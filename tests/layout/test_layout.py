"""Tests for the physical bias-implementation layer."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.errors import LayoutError
from repro.layout import (area_report, ascii_layout,
                          boundary_count_upper_bound, insert_contacts,
                          route_bias_rails, svg_layout, well_separation)
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import Technology, characterize_library, reduced_library

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=12, check_bits=5), LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="module")
def levels(placed):
    rng = np.random.default_rng(3)
    values = rng.choice([0, 4, 8], size=placed.num_rows)
    values[0] = 0
    values[1] = 4
    return [int(v) for v in values]


class TestContacts:
    def test_stations_every_50um(self, placed):
        plan = insert_contacts(placed)
        pitch = LIBRARY.tech.bias_rules.contact_pitch_um
        for row_plan in plan.rows:
            row = placed.floorplan.row(row_plan.row)
            expected = max(1, int(np.ceil(row.width_um / pitch)))
            assert len(row_plan.station_x_um) == expected

    def test_utilization_increase_within_paper_bound(self, placed):
        """Paper: max ~6% per-row utilization increase."""
        plan = insert_contacts(placed)
        assert plan.max_utilization_increase <= 0.06 + 1e-9

    def test_fits_in_spatial_slack(self, placed):
        plan = insert_contacts(placed)
        assert plan.fits_without_area_growth

    def test_more_cells_more_sites(self, placed):
        two = insert_contacts(placed, cells_per_station=2)
        four = insert_contacts(placed, cells_per_station=4)
        assert four.total_added_sites == 2 * two.total_added_sites

    def test_bad_station_count_rejected(self, placed):
        with pytest.raises(LayoutError):
            insert_contacts(placed, cells_per_station=0)

    def test_stations_inside_row(self, placed):
        plan = insert_contacts(placed)
        for row_plan in plan.rows:
            row = placed.floorplan.row(row_plan.row)
            for x in row_plan.station_x_um:
                assert 0 <= x <= row.width_um


class TestWells:
    def test_uniform_assignment_no_boundaries(self, placed):
        report = well_separation(placed, [0] * placed.num_rows)
        assert report.num_boundaries == 0
        assert report.added_area_um2 == 0.0

    def test_alternating_assignment_max_boundaries(self, placed):
        alternating = [i % 2 for i in range(placed.num_rows)]
        report = well_separation(placed, alternating)
        assert report.num_boundaries == placed.num_rows - 1
        assert report.num_boundaries == boundary_count_upper_bound(
            placed.num_rows, 2)

    def test_contiguous_clusters_minimal_boundaries(self, placed):
        half = placed.num_rows // 2
        banded = [0] * half + [5] * (placed.num_rows - half)
        report = well_separation(placed, banded)
        assert report.num_boundaries == 1

    def test_overhead_below_paper_bound(self, placed, levels):
        """Paper: well-separation area always below 5%."""
        report = well_separation(placed, levels)
        assert report.area_overhead_fraction < 0.05

    def test_wrong_length_rejected(self, placed):
        with pytest.raises(LayoutError):
            well_separation(placed, [0, 1])


class TestRouting:
    def test_two_voltages_four_rails(self, placed, levels):
        route = route_bias_rails(placed, levels, CLIB.vbs_levels)
        assert route.num_bias_values == 2
        assert len(route.rails) == 4

    def test_nbb_only_routes_nothing(self, placed):
        route = route_bias_rails(placed, [0] * placed.num_rows,
                                 CLIB.vbs_levels)
        assert route.rails == ()

    def test_too_many_voltages_rejected(self, placed):
        levels = [(i % 3) + 1 for i in range(placed.num_rows)]
        with pytest.raises(LayoutError):
            route_bias_rails(placed, levels, CLIB.vbs_levels)

    def test_rails_inside_core(self, placed, levels):
        route = route_bias_rails(placed, levels, CLIB.vbs_levels)
        for rail in route.rails:
            assert 0 <= rail.x_um
            assert (rail.x_um + rail.width_um
                    <= placed.floorplan.core_width_um + 1e-9)

    def test_special_nets_geometry(self, placed, levels):
        route = route_bias_rails(placed, levels, CLIB.vbs_levels)
        nets = route.special_nets()
        assert len(nets) == len(route.rails)
        for net in nets:
            (x1, y1, x2, y2) = net.rects_um[0]
            assert y1 == 0.0
            assert y2 == pytest.approx(placed.floorplan.core_height_um)
            assert x2 > x1

    def test_rail_layer_is_top_metal(self, placed, levels):
        route = route_bias_rails(placed, levels, CLIB.vbs_levels)
        for rail in route.rails:
            assert rail.layer == Technology().bias_rules.rail_layer


class TestRender:
    def test_ascii_contains_all_rows(self, placed, levels):
        art = ascii_layout(placed, levels)
        assert art.count("row ") == placed.num_rows

    def test_ascii_marks_rails(self, placed, levels):
        route = route_bias_rails(placed, levels, CLIB.vbs_levels)
        art = ascii_layout(placed, levels, route=route)
        assert "|" in art

    def test_svg_written(self, placed, levels, tmp_path):
        path = tmp_path / "layout.svg"
        route = route_bias_rails(placed, levels, CLIB.vbs_levels)
        svg_layout(placed, levels, path, route=route)
        content = path.read_text()
        assert content.startswith("<svg")
        assert content.count("<rect") >= placed.num_rows + len(route.rails)

    def test_length_mismatch_rejected(self, placed):
        with pytest.raises(LayoutError):
            ascii_layout(placed, [0])


class TestAreaReport:
    def test_report_within_bounds(self, placed, levels):
        report = area_report(placed, levels, CLIB.vbs_levels)
        assert report.within_paper_bounds
        text = report.format()
        assert "within paper bounds: yes" in text
        assert placed.netlist.name in text
