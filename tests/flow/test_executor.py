"""Unit tests for the engine-agnostic execution core
(``repro.flow.executor``): backend selection, single-spec and batch
semantics, dedupe/mirror accounting and counter-delta merging.

Serial-vs-parallel *equivalence* on real RunSpec batches lives in
``tests/flow/test_parallel.py``; this module pins the orchestration
contract itself with fast stubs.
"""

import pytest

from repro.api import RunResult, RunSpec
from repro.errors import SpecError
from repro.flow.cache import ArtifactCache
from repro.flow.executor import (BACKEND_NAMES, ExecutionEngine,
                                 InlineBackend, ProcessPoolBackend,
                                 create_backend)
from repro.flow.parallel import SpecFailure

SPEC_A = RunSpec(kind="allocate", design="c1355", beta=0.05)
SPEC_B = RunSpec(kind="allocate", design="c1355", beta=0.10)


@pytest.fixture
def stub_execute(monkeypatch):
    """Replace ``repro.api.execute_spec`` with a counting stub."""
    calls = []

    def fake_execute(spec, cache=None):
        calls.append(spec.spec_hash())
        if spec.beta >= 0.5:
            raise ValueError(f"refused beta {spec.beta}")
        return {"value": spec.beta, "nested": {"beta": spec.beta}}

    monkeypatch.setattr("repro.api.execute_spec", fake_execute)
    return calls


class TestBackendSelection:
    def test_create_backend_by_name(self):
        cache = ArtifactCache()
        inline = create_backend("inline", cache)
        assert isinstance(inline, InlineBackend)
        assert (inline.name, inline.workers) == ("inline", 1)
        pool = create_backend("process_pool", cache, workers=2)
        try:
            assert isinstance(pool, ProcessPoolBackend)
            assert (pool.name, pool.workers) == ("process_pool", 2)
        finally:
            pool.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="unknown execution backend"):
            create_backend("carrier_pigeon", ArtifactCache())

    def test_backend_names_is_the_cli_contract(self):
        assert BACKEND_NAMES == ("inline", "process_pool")

    def test_for_batch_prefers_inline_for_one_worker(self):
        with ExecutionEngine.for_batch(ArtifactCache(), workers=1,
                                       num_tasks=10) as engine:
            assert engine.describe() == {"name": "inline", "workers": 1}

    def test_for_batch_clamps_workers_to_tasks(self):
        with ExecutionEngine.for_batch(ArtifactCache(), workers=8,
                                       num_tasks=1) as engine:
            assert engine.describe() == {"name": "inline", "workers": 1}

    def test_for_batch_opens_a_pool_for_real_parallelism(self):
        with ExecutionEngine.for_batch(ArtifactCache(), workers=2,
                                       num_tasks=4) as engine:
            assert engine.describe() == {"name": "process_pool",
                                         "workers": 2}

    def test_close_propagates_to_backend(self):
        class Recorder(InlineBackend):
            closed = False

            def close(self):
                type(self).closed = True

        engine = ExecutionEngine(cache=ArtifactCache(),
                                 backend=Recorder(ArtifactCache()))
        with engine:
            pass
        assert Recorder.closed


class TestRunSpec:
    def test_miss_then_hit(self, stub_execute):
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            first = engine.run_spec(SPEC_A)
            second = engine.run_spec(SPEC_A)
        assert len(stub_execute) == 1
        assert first.cache_hit is False and second.cache_hit is True
        assert first.payload == second.payload

    def test_returned_payloads_are_isolated_from_the_cache(
            self, stub_execute):
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            first = engine.run_spec(SPEC_A)
            first.payload["nested"]["beta"] = 99.0
            second = engine.run_spec(SPEC_A)
        assert second.payload["nested"]["beta"] == 0.05

    def test_use_cache_false_always_executes(self, stub_execute):
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            engine.run_spec(SPEC_A)
            result = engine.run_spec(SPEC_A, use_cache=False)
        assert len(stub_execute) == 2
        assert result.cache_hit is False


class TestExecuteBatch:
    def test_dedupes_identical_specs(self, stub_execute):
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            results = engine.execute([SPEC_A, SPEC_A, SPEC_B])
        assert len(stub_execute) == 2  # one per unique spec
        assert [r.cache_hit for r in results] == [False, True, False]
        assert results[0].payload == results[1].payload
        assert all(isinstance(r, RunResult) for r in results)

    def test_results_land_in_spec_order(self, stub_execute):
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            results = engine.execute([SPEC_B, SPEC_A])
        assert [r.spec.beta for r in results] == [0.10, 0.05]

    def test_use_cache_false_executes_every_slot(self, stub_execute):
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            results = engine.execute([SPEC_A, SPEC_A],
                                     use_cache=False)
        assert len(stub_execute) == 2
        assert [r.cache_hit for r in results] == [False, False]

    def test_capture_errors_isolates_failures(self, stub_execute):
        bad = RunSpec(kind="allocate", design="c1355", beta=0.75)
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            results = engine.execute([SPEC_A, bad, SPEC_B],
                                     capture_errors=True)
        assert isinstance(results[1], SpecFailure)
        assert "refused beta" in results[1].message
        assert results[0].payload["value"] == 0.05
        assert results[2].payload["value"] == 0.10

    def test_lowest_index_failure_raised_without_capture(
            self, stub_execute):
        early = RunSpec(kind="allocate", design="c1355", beta=0.60)
        late = RunSpec(kind="allocate", design="c1355", beta=0.90)
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            with pytest.raises(ValueError, match="beta 0.6"):
                engine.execute([SPEC_A, early, late])

    def test_batch_misses_become_hits_for_later_batches(
            self, stub_execute):
        with ExecutionEngine(cache=ArtifactCache()) as engine:
            engine.execute([SPEC_A, SPEC_B])
            results = engine.execute([SPEC_A, SPEC_B])
        assert len(stub_execute) == 2
        assert all(r.cache_hit for r in results)


class TestCounterDeltaMerge:
    def test_backend_stats_deltas_fold_into_engine_cache(self):
        """A backend returning worker counter deltas (the process-pool
        contract) sees them merged into the engine cache's counters."""
        from concurrent.futures import Future

        class DeltaBackend:
            name = "delta-stub"
            workers = 1

            def submit(self, spec):
                future = Future()
                future.set_result(({"value": 1},
                                   {"clib": {"memory_hits": 2,
                                             "disk_hits": 1,
                                             "misses": 3}}))
                return future

            def close(self):
                pass

        cache = ArtifactCache()
        with ExecutionEngine(cache=cache, backend=DeltaBackend()) \
                as engine:
            engine.run_spec(SPEC_A)
        by_kind = cache.stats()["by_kind"]
        assert by_kind["clib"] == {"hits": 3, "memory_hits": 2,
                                   "disk_hits": 1, "misses": 3}
        # the run-cache lookup itself was a miss, then stored
        assert by_kind["run"]["misses"] == 1
