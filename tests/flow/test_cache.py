"""Tests for the content-addressed artifact cache.

Includes the regression for the old ``_CLIB_CACHE`` bug: its
invalidation predicate keyed characterized libraries on ``tech.name``
alone, so two different Technology objects sharing a name collided.
The artifact cache keys on the full technology content instead.
"""

import dataclasses

import pytest

from repro.errors import SpecError
from repro.flow import characterized_library, implement
from repro.flow.cache import (ArtifactCache, canonical_json, content_hash,
                              default_cache, set_default_cache,
                              tech_content)
from repro.tech import Technology


class TestContentHash:
    def test_stable_across_key_order(self):
        assert content_hash({"a": 1, "b": [1, 2]}) \
            == content_hash({"b": [1, 2], "a": 1})

    def test_tuples_and_lists_hash_alike(self):
        assert content_hash({"x": (1, 2)}) == content_hash({"x": [1, 2]})

    def test_different_content_different_hash(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_dataclasses_hash_by_content(self):
        assert content_hash(Technology()) == content_hash(Technology())
        assert content_hash(Technology()) \
            != content_hash(Technology(vth0_n=0.46))

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": (2,)}) == '{"a":[2],"b":1}'

    def test_unhashable_material_rejected(self):
        with pytest.raises(SpecError):
            content_hash({"f": object()})


class TestArtifactCache:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        found, _ = cache.lookup("thing", {"k": 1})
        assert not found
        cache.put("thing", {"k": 1}, "value")
        found, value = cache.lookup("thing", {"k": 1})
        assert found and value == "value"
        assert cache.hits == 1 and cache.misses == 1

    def test_get_or_create_runs_factory_once(self):
        cache = ArtifactCache()
        calls = []
        for _ in range(3):
            value = cache.get_or_create("thing", {"k": 1},
                                        lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1
        assert cache.hits == 2 and cache.misses == 1

    def test_kinds_are_namespaced(self):
        cache = ArtifactCache()
        cache.put("alpha", {"k": 1}, "a")
        found, _ = cache.lookup("beta", {"k": 1})
        assert not found
        assert cache.stats()["by_kind"]["beta"]["misses"] == 1

    def test_stats_shape(self):
        cache = ArtifactCache()
        cache.get_or_create("x", {"k": 1}, lambda: 1)
        cache.get_or_create("x", {"k": 1}, lambda: 1)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["memory_hits"] == 1 and stats["disk_hits"] == 0
        assert stats["entries"] == 1
        assert stats["by_kind"]["x"] == {"hits": 1, "memory_hits": 1,
                                         "disk_hits": 0, "misses": 1}

    def test_clear_resets_memory_and_counters(self):
        cache = ArtifactCache()
        cache.get_or_create("x", {"k": 1}, lambda: 1)
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0
        found, _ = cache.lookup("x", {"k": 1})
        assert not found

    def test_disk_tier_survives_new_instance(self, tmp_path):
        first = ArtifactCache(cache_dir=tmp_path)
        first.put("thing", {"k": 1}, {"payload": [1, 2, 3]})
        second = ArtifactCache(cache_dir=tmp_path)
        found, value = second.lookup("thing", {"k": 1})
        assert found and value == {"payload": [1, 2, 3]}

    def test_corrupt_disk_artifact_is_a_miss(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        address = cache.put("thing", {"k": 1}, "value")
        path = tmp_path / "thing" / address[:2] / f"{address}.pkl"
        path.write_bytes(b"not a pickle")
        fresh = ArtifactCache(cache_dir=tmp_path)
        found, _ = fresh.lookup("thing", {"k": 1})
        assert not found

    def test_lru_eviction_bounds_memory_tier(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("x", {"k": 1}, "a")
        cache.put("x", {"k": 2}, "b")
        cache.lookup("x", {"k": 1})  # touch 1 -> 2 becomes LRU
        cache.put("x", {"k": 3}, "c")
        assert cache.lookup("x", {"k": 2})[0] is False  # evicted
        assert cache.lookup("x", {"k": 1})[0] is True
        assert cache.lookup("x", {"k": 3})[0] is True

    def test_evicted_entries_reload_from_disk(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, max_entries=1)
        cache.put("x", {"k": 1}, "a")
        cache.put("x", {"k": 2}, "b")  # evicts 1 from memory
        found, value = cache.lookup("x", {"k": 1})
        assert found and value == "a"  # served by the disk tier

    def test_bad_max_entries_rejected(self):
        with pytest.raises(SpecError):
            ArtifactCache(max_entries=0)

    def test_default_cache_swap(self):
        replacement = ArtifactCache()
        previous = set_default_cache(replacement)
        try:
            assert default_cache() is replacement
        finally:
            set_default_cache(previous)


class TestEvictionAndMergeEdgeCases:
    """Satellite edge cases: eviction at the minimum memory budget
    with mixed kinds, and counter merging with empty / overlapping /
    legacy-shaped delta dicts."""

    def test_max_entries_one_with_mixed_kinds(self):
        """The memory tier is one LRU across kinds: at max_entries=1
        a put of any kind evicts whatever else was resident."""
        cache = ArtifactCache(max_entries=1)
        cache.put("clib", {"k": 1}, "library")
        cache.put("flow", {"k": 1}, "netlist")  # evicts the clib entry
        assert cache.lookup("clib", {"k": 1})[0] is False
        found, value = cache.lookup("flow", {"k": 1})
        assert found and value == "netlist"
        assert cache.stats()["entries"] == 1
        # the eviction was memory-only bookkeeping, not a counter reset
        assert cache.stats()["by_kind"]["clib"]["misses"] == 1

    def test_max_entries_one_disk_tier_keeps_both_kinds(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, max_entries=1)
        cache.put("clib", {"k": 1}, "library")
        cache.put("flow", {"k": 1}, "netlist")
        found, value = cache.lookup("clib", {"k": 1})
        assert found and value == "library"  # reloaded from disk
        assert cache.stats()["by_kind"]["clib"]["disk_hits"] == 1
        assert cache.stats()["by_kind"]["clib"]["memory_hits"] == 0

    def test_merge_counts_empty_delta_is_a_noop(self):
        cache = ArtifactCache()
        cache.get_or_create("x", {"k": 1}, lambda: 1)
        before = cache.stats()
        cache.merge_counts({})
        cache.merge_counts({"x": {}})
        after = cache.stats()
        assert after == before

    def test_merge_counts_overlapping_kinds_accumulate(self):
        """Merging into a kind the cache already counted adds to the
        existing tallies instead of replacing them."""
        cache = ArtifactCache()
        cache.get_or_create("x", {"k": 1}, lambda: 1)  # x: 1 miss
        cache.get_or_create("x", {"k": 1}, lambda: 1)  # x: 1 memory hit
        cache.merge_counts({"x": {"memory_hits": 5, "disk_hits": 2,
                                  "misses": 3},
                            "y": {"memory_hits": 1}})
        by_kind = cache.stats()["by_kind"]
        assert by_kind["x"] == {"hits": 8, "memory_hits": 6,
                                "disk_hits": 2, "misses": 4}
        assert by_kind["y"] == {"hits": 1, "memory_hits": 1,
                                "disk_hits": 0, "misses": 0}

    def test_merge_counts_legacy_hits_attributed_to_memory(self):
        cache = ArtifactCache()
        cache.merge_counts({"x": {"hits": 4, "misses": 2}})
        assert cache.stats()["by_kind"]["x"] == {
            "hits": 4, "memory_hits": 4, "disk_hits": 0, "misses": 2}
        assert cache.hits == 4 and cache.misses == 2


class TestCharacterizedLibraryCache:
    def test_same_content_same_object(self):
        cache = ArtifactCache()
        first = characterized_library(Technology(), cache=cache)
        second = characterized_library(Technology(), cache=cache)
        assert first is second
        assert cache.stats()["by_kind"]["clib"]["hits"] == 1

    def test_same_name_different_content_not_collided(self):
        """Regression: the old _CLIB_CACHE keyed on tech.name only."""
        cache = ArtifactCache()
        base = Technology()
        shifted = Technology(vth0_n=0.50)
        assert base.name == shifted.name  # same name, different node
        first = characterized_library(base, cache=cache)
        second = characterized_library(shifted, cache=cache)
        assert first is not second
        assert first.delay_scales != second.delay_scales
        assert cache.stats()["by_kind"]["clib"]["misses"] == 2

    def test_tech_content_covers_every_field(self):
        fields = set(tech_content(Technology())["fields"])
        assert fields == {f.name
                         for f in dataclasses.fields(Technology)}


class TestImplementCache:
    def test_named_benchmark_memoized(self):
        cache = ArtifactCache()
        first = implement("c1355", cache=cache)
        second = implement("c1355", cache=cache)
        assert first is second
        assert cache.stats()["by_kind"]["flow"]["hits"] == 1

    def test_flow_knobs_participate_in_key(self):
        cache = ArtifactCache()
        implement("c1355", cache=cache)
        other = implement("c1355", utilization=0.70, cache=cache)
        assert cache.stats()["by_kind"]["flow"]["misses"] == 2
        assert other.num_rows > 0
