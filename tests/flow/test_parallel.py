"""Tests for the process-pool execution engine and cache concurrency.

Covers the determinism contract (``workers=1`` is the reference path;
any ``workers > 1`` run must merge back bit-identical results modulo
wall-clock fields), per-spec error capture, and the multi-process
safety of the disk cache tier (atomic writes, corrupt entries degrade
to misses) that lets workers share one cache directory.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api import RunSpec, run_many
from repro.errors import SpecError
from repro.flow import ArtifactCache, SpecFailure, stable_payload
from repro.flow.parallel import chunked, resolve_workers

#: a disk-cache payload large enough that a truncated write is obvious
HAMMER_VALUE = {"data": list(range(4000)), "tag": "hammer"}
HAMMER_KEY = {"artifact": "hammer", "k": 1}


def _hammer_disk_cache(args):
    """Worker: repeatedly write and read one shared disk-cache key.

    Every lookup must be either a miss or the complete value — a
    truncated or interleaved read is the corruption this guards
    against.  Runs in a separate process (module-level so it pickles).
    """
    cache_dir, rounds = args
    bad = 0
    for _ in range(rounds):
        cache = ArtifactCache(cache_dir=cache_dir)
        cache.put("thing", HAMMER_KEY, HAMMER_VALUE)
        found, value = ArtifactCache(cache_dir=cache_dir).lookup(
            "thing", HAMMER_KEY)
        if found and value != HAMMER_VALUE:
            bad += 1
    return bad


class TestWorkerPlumbing:
    def test_resolve_workers_validates(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(4, num_tasks=2) == 2
        assert resolve_workers(4, num_tasks=0) == 1
        with pytest.raises(SpecError, match="workers"):
            resolve_workers(0)

    def test_chunked_preserves_order_and_covers_everything(self):
        items = list(range(10))
        for num_chunks in (1, 2, 3, 4, 10, 99):
            chunks = chunked(items, num_chunks)
            assert [x for chunk in chunks for x in chunk] == items
            assert all(chunk for chunk in chunks)
            assert len(chunks) == min(num_chunks, len(items))
        assert chunked([], 3) == []
        with pytest.raises(SpecError):
            chunked(items, 0)

    def test_stable_payload_drops_only_runtime_fields(self):
        payload = {"savings_pct": 12.5, "runtime_s": 0.3,
                   "ilp_runtime_s": 1.0, "sample_runtime_s": 0.1,
                   "tune_runtime_s": 0.2, "design": "c1355"}
        assert stable_payload(payload) == {"savings_pct": 12.5,
                                           "design": "c1355"}

    def test_spec_failure_serializes(self):
        failure = SpecFailure.from_exception(
            {"kind": "nope"}, SpecError("unknown run kind"))
        data = failure.to_dict()
        assert data["error"] == "SpecError"
        assert "unknown run kind" in data["message"]
        assert data["spec"] == {"kind": "nope"}
        assert '"error":"SpecError"' in failure.to_json()


class TestRunManyParallel:
    """Serial-vs-parallel equivalence on real RunSpec batches."""

    SPECS = [RunSpec(kind="allocate", design="c1355", beta=beta,
                     method=method)
             for beta, method in ((0.03, "heuristic:row-descent"),
                                  (0.05, "heuristic:row-descent"),
                                  (0.05, "heuristic:level-sweep"))]

    def test_parallel_matches_serial(self):
        serial = run_many(self.SPECS, cache=ArtifactCache())
        parallel = run_many(self.SPECS, cache=ArtifactCache(), workers=2)
        assert [stable_payload(r.payload) for r in serial] \
            == [stable_payload(r.payload) for r in parallel]
        assert [r.spec for r in serial] == [r.spec for r in parallel]
        assert not any(r.cache_hit for r in parallel)

    def test_duplicate_specs_execute_once_and_hit(self):
        spec = self.SPECS[0]
        cache = ArtifactCache()
        results = run_many([spec, spec, spec], cache=cache, workers=2)
        assert [r.cache_hit for r in results] == [False, True, True]
        assert results[0].payload == results[1].payload \
            == results[2].payload
        assert cache.stats()["by_kind"]["run"]["misses"] == 1

    def test_prewarmed_cache_served_by_parent(self):
        cache = ArtifactCache()
        cold = run_many(self.SPECS, cache=cache)
        warm = run_many(self.SPECS, cache=cache, workers=3)
        assert all(r.cache_hit for r in warm)
        assert [r.payload for r in warm] == [r.payload for r in cold]

    def test_population_payloads_match_at_four_workers(self):
        """The ISSUE acceptance pairing: identical RunResult payloads
        for workers=1 vs workers=4 on a seeded, tuned population."""
        spec = RunSpec(kind="population", design="c1355", num_dies=40,
                       seed=9, tune=True)
        serial = run_many([spec], cache=ArtifactCache())
        parallel = run_many([spec], cache=ArtifactCache(), workers=4)
        assert stable_payload(parallel[0].payload) \
            == stable_payload(serial[0].payload)
        assert parallel[0].payload["tuned_yield"] is not None

    def test_parallel_results_land_in_spec_order(self):
        cache = ArtifactCache()
        results = run_many(self.SPECS, cache=cache, workers=3)
        assert [r.spec for r in results] == list(self.SPECS)

    def test_workers_validated(self):
        with pytest.raises(SpecError, match="workers"):
            run_many(self.SPECS, cache=ArtifactCache(), workers=0)

    def test_capture_errors_isolates_failures(self):
        bad = RunSpec(kind="allocate", design="c1355",
                      tech={"not_a_knob": 1})
        batch = [self.SPECS[0], bad, self.SPECS[1]]
        for workers in (1, 2):
            results = run_many(batch, cache=ArtifactCache(),
                               workers=workers, capture_errors=True)
            assert isinstance(results[1], SpecFailure)
            assert results[1].error == "SpecError"
            assert results[0].payload["design"] == "c1355"
            assert results[2].payload["design"] == "c1355"

    def test_errors_raise_without_capture(self):
        bad = RunSpec(kind="allocate", design="c1355",
                      tech={"not_a_knob": 1})
        for workers in (1, 2):
            with pytest.raises(SpecError, match="bad tech overrides"):
                run_many([bad], cache=ArtifactCache(), workers=workers)

    def test_unhashable_spec_captured_in_parallel_too(self):
        """A spec that fails at hashing time (before any worker runs)
        must be captured like the serial path captures it — and its
        error record must still serialize."""
        unhashable = RunSpec(kind="allocate", design="c1355",
                             tech={"x": {1, 2}})  # sets don't hash
        batch = [unhashable, self.SPECS[0]]
        for workers in (1, 2):
            results = run_many(batch, cache=ArtifactCache(),
                               workers=workers, capture_errors=True)
            assert isinstance(results[0], SpecFailure)
            assert results[0].error == "SpecError"
            assert "content address" in results[0].to_json()
            assert results[1].payload["design"] == "c1355"

    def test_raise_without_capture_picks_first_spec_in_order(self):
        """With several failing specs, the raised exception must be the
        lowest-index one — the same exception serial raises first —
        regardless of pool completion order."""
        first_bad = RunSpec(kind="allocate", design="c1355",
                            tech={"x": {1, 2}})
        later_bad = RunSpec(kind="allocate", design="c1355",
                            tech={"not_a_knob": 1})
        with pytest.raises(SpecError, match="content address"):
            run_many([first_bad, later_bad], cache=ArtifactCache(),
                     workers=2)

    def test_worker_cache_counters_merge_into_parent_stats(self):
        """A cold parallel sweep's stats must show the worker-side
        clib/flow activity a serial sweep shows, not just 'run'."""
        cache = ArtifactCache()
        run_many(self.SPECS, cache=cache, workers=2)
        by_kind = cache.stats()["by_kind"]
        assert by_kind["run"]["misses"] == len(self.SPECS)
        assert "clib" in by_kind
        assert "flow" in by_kind
        assert by_kind["flow"]["misses"] >= 1

    def test_merge_counts_accumulates(self):
        cache = ArtifactCache()
        cache.lookup("flow", {"k": 1})  # one native miss
        cache.merge_counts({"flow": {"memory_hits": 2, "disk_hits": 1,
                                     "misses": 3},
                            "clib": {"hits": 1, "misses": 0}})
        by_kind = cache.stats()["by_kind"]
        # tiered delta folds per tier; a legacy aggregate delta
        # ("hits" only) is attributed to the memory tier
        assert by_kind["flow"] == {"hits": 3, "memory_hits": 2,
                                   "disk_hits": 1, "misses": 4}
        assert by_kind["clib"] == {"hits": 1, "memory_hits": 1,
                                   "disk_hits": 0, "misses": 0}

    def test_workers_share_parent_disk_tier(self, tmp_path):
        """Artifacts a worker builds must persist in the shared disk
        cache so later (serial or parallel) runs reuse them."""
        cache = ArtifactCache(cache_dir=tmp_path)
        run_many([self.SPECS[0]], cache=cache, workers=2)
        fresh = ArtifactCache(cache_dir=tmp_path)
        found, _ = fresh.lookup("run", self.SPECS[0].spec_hash())
        assert found
        # the worker's flow/clib intermediates landed on disk too
        # (sharded layout: <kind>/<aa>/<address>.pkl)
        assert list(tmp_path.glob("clib/??/*.pkl"))
        assert list(tmp_path.glob("flow/??/*.pkl"))


class TestDiskCacheConcurrency:
    def test_two_processes_hammer_one_key_without_corruption(
            self, tmp_path):
        args = (str(tmp_path), 25)
        with ProcessPoolExecutor(max_workers=2) as pool:
            corrupt_reads = list(pool.map(_hammer_disk_cache,
                                          [args, args]))
        assert corrupt_reads == [0, 0]
        found, value = ArtifactCache(cache_dir=tmp_path).lookup(
            "thing", HAMMER_KEY)
        assert found and value == HAMMER_VALUE
        assert not list(tmp_path.rglob("*.tmp"))

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        for k in range(5):
            cache.put("thing", {"k": k}, HAMMER_VALUE)
        assert len(list(tmp_path.glob("thing/??/*.pkl"))) == 5
        assert not list(tmp_path.rglob("*.tmp"))

    def test_truncated_pickle_degrades_to_miss_and_heals(self, tmp_path):
        """A killed writer's partial file must read as a miss, and a
        later successful write must repair the entry."""
        cache = ArtifactCache(cache_dir=tmp_path)
        address = cache.put("thing", HAMMER_KEY, HAMMER_VALUE)
        path = tmp_path / "thing" / address[:2] / f"{address}.pkl"
        whole = pickle.dumps(HAMMER_VALUE)
        path.write_bytes(whole[:len(whole) // 2])  # simulate the crash
        fresh = ArtifactCache(cache_dir=tmp_path)
        found, _ = fresh.lookup("thing", HAMMER_KEY)
        assert not found
        fresh.put("thing", HAMMER_KEY, HAMMER_VALUE)
        found, value = ArtifactCache(cache_dir=tmp_path).lookup(
            "thing", HAMMER_KEY)
        assert found and value == HAMMER_VALUE

    def test_unpicklable_value_stays_memory_only(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("thing", {"k": 1}, lambda: None)  # not picklable
        assert not list(tmp_path.rglob("*.pkl"))
        assert not list(tmp_path.rglob("*.tmp"))
        found, _ = cache.lookup("thing", {"k": 1})
        assert found  # memory tier still serves it
