"""Formatting edge cases for the report tables.

Covers the corners ISSUE 2 called out: ILP-timeout '-' cells, empty and
single-die populations, plus the cache-stats block the sweep interface
prints.
"""

from repro.flow import format_cache_stats, format_population, format_table1
from repro.flow.experiment import PopulationRow, Table1Row


def make_table1_row(**overrides):
    defaults = dict(
        design="c1355", gates=444, rows=10, beta=0.05,
        single_bb_uw=12.345,
        ilp_savings={2: 15.4, 3: 17.9},
        heuristic_savings={2: 13.2, 3: 14.7},
        num_constraints=42, ilp_runtime_s=1.0, heuristic_runtime_s=0.1)
    defaults.update(overrides)
    return Table1Row(**defaults)


def make_population_row(**overrides):
    defaults = dict(
        design="c1355", gates=444, rows=10, num_dies=100,
        nominal_delay_ps=850.0, beta_mean=0.01, beta_std=0.005,
        beta_max=0.04, timing_yield=0.9, sta_engine="batched",
        sample_runtime_s=0.1)
    defaults.update(overrides)
    return PopulationRow(**defaults)


class TestTable1Formatting:
    def test_timeout_cells_render_as_dash(self):
        row = make_table1_row(ilp_savings={2: None, 3: None})
        table = format_table1([row])
        line = table.splitlines()[2]
        assert line.count("-") >= 2
        assert row.ilp_cell(2) == "-" and row.ilp_cell(3) == "-"

    def test_mixed_timeout_and_value_cells(self):
        row = make_table1_row(ilp_savings={2: 15.4, 3: None})
        assert row.ilp_cell(2) == "15.40"
        assert row.ilp_cell(3) == "-"
        assert "15.40" in format_table1([row])

    def test_missing_budget_renders_as_dash(self):
        row = make_table1_row(ilp_savings={2: 15.4})
        assert row.ilp_cell(3) == "-"

    def test_empty_row_list_still_has_header_and_legend(self):
        table = format_table1([])
        assert "Benchmark" in table
        assert "ILP not run/converged" in table


class TestPopulationFormatting:
    def test_empty_population_renders(self):
        text = format_population([])
        assert "Benchmark" in text
        assert "STA engine: -" in text

    def test_single_die_population(self):
        row = make_population_row(num_dies=1, beta_std=0.0, beta_mean=0.02,
                                  beta_max=0.02, timing_yield=0.0)
        text = format_population([row])
        assert "      1" in text
        assert "0.00%" in text  # zero std renders cleanly

    def test_untuned_row_shows_dashes(self):
        text = format_population([make_population_row()])
        body = text.splitlines()[2]
        assert body.rstrip().count("-") >= 2  # tuned and rec/lost columns

    def test_tuned_row_shows_recovery_counts(self):
        row = make_population_row(tuned_yield=0.95, recovered=5, lost=1)
        text = format_population([row])
        assert "95%" in text
        assert "5/1" in text


class TestCacheStatsFormatting:
    def test_empty_stats(self):
        text = format_cache_stats({"hits": 0, "misses": 0, "entries": 0,
                                   "by_kind": {}})
        assert "0 hits / 0 misses" in text
        assert "no lookups" in text

    def test_per_kind_breakdown(self):
        stats = {"hits": 3, "misses": 2, "entries": 2,
                 "by_kind": {"clib": {"hits": 1, "misses": 1},
                             "run": {"hits": 2, "misses": 1}}}
        text = format_cache_stats(stats)
        assert "3 hits / 2 misses" in text
        assert "clib" in text and "run" in text
