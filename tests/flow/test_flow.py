"""Tests for the end-to-end flow and the experiment harnesses."""

import pytest

from repro.flow import (ExperimentConfig, PopulationConfig, format_population,
                        format_sweep, format_table1, implement,
                        run_design_beta, run_population,
                        run_population_study, run_table1)


@pytest.fixture(scope="module")
def flow():
    return implement("c1355")


class TestImplement:
    def test_produces_consistent_result(self, flow):
        assert flow.name == "c1355"
        assert flow.num_gates > 300
        assert flow.num_rows > 5
        assert flow.dcrit_ps == pytest.approx(
            flow.analyzer.critical_delay_ps())

    def test_paths_cover_design(self, flow):
        covered = set()
        for path in flow.paths:
            covered.update(path.gates)
        assert len(covered) == flow.num_gates

    def test_accepts_custom_netlist(self):
        from repro.circuits import c3540_like
        result = implement(c3540_like(width=6))
        assert result.name == "c3540"

    def test_unknown_benchmark_rejected(self):
        from repro.errors import NetlistError
        with pytest.raises(NetlistError):
            implement("c17")


class TestTable1Harness:
    def test_single_row(self, flow):
        config = ExperimentConfig(betas=(0.05,), ilp_time_limit_s=60)
        row = run_design_beta(flow, 0.05, config)
        assert row.design == "c1355"
        assert row.single_bb_uw > 0
        assert row.num_constraints > 0
        for clusters in (2, 3):
            assert row.ilp_savings[clusters] is not None
            assert row.heuristic_savings[clusters] >= 0
            # the exact method dominates the greedy one
            assert (row.ilp_savings[clusters]
                    >= row.heuristic_savings[clusters] - 1e-6)

    def test_skip_ilp_threshold(self, flow):
        config = ExperimentConfig(betas=(0.05,), skip_ilp_above_rows=1)
        row = run_design_beta(flow, 0.05, config)
        assert row.ilp_savings[2] is None
        assert row.ilp_cell(2) == "-"

    def test_savings_grow_with_beta(self, flow):
        config = ExperimentConfig(betas=(0.05, 0.10))
        rows = run_table1(("c1355",), config,
                          flows={"c1355": flow})
        assert rows[1].heuristic_savings[3] > rows[0].heuristic_savings[3]
        assert rows[1].num_constraints > rows[0].num_constraints

    def test_formatting(self, flow):
        config = ExperimentConfig(betas=(0.05,))
        rows = run_table1(("c1355",), config, flows={"c1355": flow})
        table = format_table1(rows)
        assert "c1355" in table
        assert "No.Constr" in table

    def test_sweep_formatting(self):
        text = format_sweep("c5315", 0.05, [2, 3, 4], [10.0, 11.0, 11.5])
        assert "c5315" in text
        assert "+1.00" in text


class TestPopulationHarness:
    def test_sample_only_row(self, flow):
        config = PopulationConfig(num_dies=30, seed=3)
        row = run_population(flow, config)
        assert row.design == "c1355"
        assert row.num_dies == 30
        assert row.beta_std > 0
        assert 0 <= row.timing_yield <= 1
        assert row.tuned_yield is None
        assert row.sta_engine == "batched"

    def test_tuned_row_improves_yield(self, flow):
        config = PopulationConfig(num_dies=12, seed=3, tune=True)
        row = run_population(flow, config)
        assert row.tuned_yield is not None
        assert row.tuned_yield >= row.timing_yield
        assert row.recovered + row.lost \
            == round((1 - row.timing_yield) * row.num_dies)

    def test_study_and_formatting(self, flow):
        config = PopulationConfig(num_dies=20, seed=1)
        rows = run_population_study(("c1355",), config,
                                    flows={"c1355": flow})
        text = format_population(rows)
        assert "c1355" in text
        assert "STA engine: batched" in text
