"""Docs consistency: the documentation layer is executable and checked.

The seed shipped docstrings citing a DESIGN.md that did not exist; this
suite (also wired up as ``make docs-check`` and CI's docs job) keeps
the documentation honest four ways:

* every markdown document and repo path referenced anywhere must exist
  (dangling-reference check across code and docs);
* TUTORIAL.md is *executed*: its Python blocks run in order in one
  namespace, and its ``repro-fbb`` command lines are validated against
  the real CLI parser — symbols, files and flags cannot drift;
* the user-facing documents must keep naming the public API, parallel
  and spatial layers they document (section-presence checks);
* every module under ``src/repro`` must carry a docstring naming its
  paper anchor (Sec./Fig./Table/Eq. or an explicit paper mention), the
  ``make lint`` policy extended beyond the solver registry.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _ensure_src_on_path():
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

#: uppercase-named markdown docs (DESIGN.md, README.md, ...) cited in
#: code or other docs; lowercase .md names are left alone (they are
#: usually external or illustrative)
MARKDOWN_REFERENCE = re.compile(r"\b([A-Z][A-Za-z0-9_-]*\.md)\b")

SCAN_DIRECTORIES = ("src", "tests", "examples", "benchmarks")


def iter_markdown_references():
    paths = [path
             for directory in SCAN_DIRECTORIES
             for path in sorted((REPO_ROOT / directory).rglob("*.py"))]
    paths += sorted(REPO_ROOT.glob("*.md"))
    paths += sorted(REPO_ROOT.glob("*.py"))
    for path in paths:
        text = path.read_text(encoding="utf-8", errors="replace")
        for match in MARKDOWN_REFERENCE.finditer(text):
            yield path.relative_to(REPO_ROOT), match.group(1)


def test_referenced_markdown_docs_exist():
    missing = sorted({
        f"{source}: references missing {name}"
        for source, name in iter_markdown_references()
        if not (REPO_ROOT / name).is_file()})
    assert not missing, "\n".join(missing)


def test_core_docs_present():
    """The documentation layer the docstrings rely on must ship."""
    for name in ("README.md", "DESIGN.md", "ROADMAP.md"):
        assert (REPO_ROOT / name).is_file(), f"{name} is missing"


#: public names of the repro.api layer that README.md and DESIGN.md
#: must document (ISSUE 2's API section)
API_DOC_NAMES = ("repro.api", "RunSpec", "RunResult", "ArtifactCache",
                 "solver registry", "repro-fbb sweep")


def test_api_layer_documented():
    """The facade's names must appear in both user-facing documents."""
    missing = []
    for doc in ("README.md", "DESIGN.md"):
        text = (REPO_ROOT / doc).read_text(encoding="utf-8")
        for name in API_DOC_NAMES:
            if name not in text:
                missing.append(f"{doc}: does not mention {name!r}")
    assert not missing, "\n".join(missing)


#: names of the parallel execution layer that DESIGN.md's "Parallel
#: execution" section must pin down (ISSUE 3)
PARALLEL_DOC_NAMES = ("Parallel execution", "workers", "ProcessPool",
                      "os.replace", "tune_population",
                      "flow/parallel.py")


def test_parallel_execution_documented():
    """DESIGN.md must describe the worker/cache topology and the
    determinism contract of the parallel engine."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    missing = [name for name in PARALLEL_DOC_NAMES if name not in text]
    assert not missing, f"DESIGN.md does not mention: {missing}"


def test_parallel_bench_artifact_documented():
    """EXPERIMENTS.md must track the parallel speedup benchmark."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ("bench_parallel.py", "out/parallel.txt"):
        assert name in text, f"EXPERIMENTS.md does not mention {name}"


def test_documented_solver_methods_exist():
    """Every method name DESIGN.md's API section lists must be
    registered, so the docs cannot drift from the registry."""
    _ensure_src_on_path()
    from repro.core import registry
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    documented = set(re.findall(
        r"`((?:ilp|heuristic):[a-z_-]+|single_bb)`", text))
    assert documented, "DESIGN.md lists no solver-registry methods"
    registered = set(registry.names(include_aliases=True))
    assert documented <= registered, (
        f"DESIGN.md documents unregistered methods: "
        f"{sorted(documented - registered)}")


#: names of the spatial compensation layer that DESIGN.md's "Spatial
#: compensation" section must pin down (ISSUE 4)
SPATIAL_DOC_NAMES = ("Spatial compensation", "SpatialSensorGrid",
                     "correlation_length_fraction", "soc_quad",
                     "row_betas", "replica_sensor_grid",
                     "bench_spatial.py", "repro-fbb spatial")


def test_spatial_compensation_documented():
    """DESIGN.md must describe the sensing topology, the per-row beta
    vector contract and the spatial determinism contract."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    missing = [name for name in SPATIAL_DOC_NAMES if name not in text]
    assert not missing, f"DESIGN.md does not mention: {missing}"


def test_spatial_bench_artifact_documented():
    """EXPERIMENTS.md must track the spatial compensation benchmark."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ("bench_spatial.py", "out/spatial.txt"):
        assert name in text, f"EXPERIMENTS.md does not mention {name}"


def test_readme_maps_every_package():
    """README.md's architecture map must name all src/repro packages."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    packages = sorted(
        path.name for path in (REPO_ROOT / "src" / "repro").iterdir()
        if path.is_dir() and (path / "__init__.py").is_file())
    assert len(packages) >= 14
    missing = [name for name in packages if f"`{name}/`" not in text]
    assert not missing, f"README.md package map misses: {missing}"


#: names of the bias-domain grouping layer that DESIGN.md's
#: "Bias-domain grouping" section must pin down (ISSUE 5)
GROUPING_DOC_NAMES = ("Bias-domain grouping", "RowGrouping",
                      "solve_grouped", "reduce_problem", "num_domains",
                      "bench_grouping.py", "--grouping",
                      "group_betas", "cache_material")


def test_bias_domain_grouping_documented():
    """DESIGN.md must describe the grouping abstraction, the exact
    reduction, the identity bit-identity/hash-stability contract and
    the sensor mapping."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    missing = [name for name in GROUPING_DOC_NAMES if name not in text]
    assert not missing, f"DESIGN.md does not mention: {missing}"


def test_documented_grouping_strategies_exist():
    """Every grouping strategy DESIGN.md names must be registered, and
    every registered strategy must be documented there."""
    _ensure_src_on_path()
    from repro.grouping import grouping_registry
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    for name in grouping_registry.names():
        assert f"`{name}" in text, (
            f"DESIGN.md does not document grouping strategy {name!r}")


def test_grouping_bench_artifact_documented():
    """EXPERIMENTS.md must track the grouping benchmark."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ("bench_grouping.py", "out/grouping.txt"):
        assert name in text, f"EXPERIMENTS.md does not mention {name}"


#: names of the batched calibration layer that DESIGN.md's "Batched
#: calibration" section must pin down (ISSUE 6)
BATCHED_DOC_NAMES = ("Batched calibration", "mode=\"batched\"",
                     "tuning_engine", "initial_sensor_estimate",
                     "refine", "DEFAULT_REFINE_FALLBACK",
                     "bench_tuning_throughput.py",
                     "--tuning-engine batched")


def test_batched_calibration_documented():
    """DESIGN.md must describe the pass topology, the dedup-by-estimate
    cache, the dirty-cone invariant and the determinism contract of the
    batched calibration engine."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    missing = [name for name in BATCHED_DOC_NAMES if name not in text]
    assert not missing, f"DESIGN.md does not mention: {missing}"


def test_batched_bench_artifact_documented():
    """EXPERIMENTS.md must track the batched calibration benchmark."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ("bench_tuning_throughput.py",
                 "out/tuning_throughput.txt"):
        assert name in text, f"EXPERIMENTS.md does not mention {name}"


#: names of the serving layer that DESIGN.md's "Serving layer"
#: section must pin down (ISSUE 8)
SERVE_DOC_NAMES = ("Serving layer", "ExecutionEngine", "single-flight",
                   "spec_hash", "POST /run", "GET /stats",
                   "repro-fbb serve", "repro-fbb cache",
                   "flow/executor.py", "bench_serve.py",
                   "async-blocking")


def test_serving_layer_documented():
    """DESIGN.md must describe the execution core, the single-flight
    contract, the drain semantics and the service endpoints."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    missing = [name for name in SERVE_DOC_NAMES if name not in text]
    assert not missing, f"DESIGN.md does not mention: {missing}"


def test_serve_bench_artifact_documented():
    """EXPERIMENTS.md must track the allocation-service benchmark."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ("bench_serve.py", "out/serve.txt"):
        assert name in text, f"EXPERIMENTS.md does not mention {name}"


#: names of the temporal-scenario layer that DESIGN.md's "Temporal
#: scenarios" section must pin down (ISSUE 9)
TEMPORAL_DOC_NAMES = ("Temporal scenarios", "DriftModel",
                      "run_lifetime", "EcoSolver", "dirty-domain",
                      "default_rng([seed, epoch])", "quantise_betas",
                      "scales_out", "cadence", "yield_curve",
                      "bench_aging.py", "repro-fbb lifetime")


def test_temporal_scenarios_documented():
    """DESIGN.md must describe the drift process's determinism
    contract, the lifetime loop and the dirty-domain invariant of the
    incremental ECO re-solver."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    missing = [name for name in TEMPORAL_DOC_NAMES if name not in text]
    assert not missing, f"DESIGN.md does not mention: {missing}"


def test_aging_bench_artifact_documented():
    """EXPERIMENTS.md must track the incremental-ECO benchmark."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ("bench_aging.py", "out/aging.txt"):
        assert name in text, f"EXPERIMENTS.md does not mention {name}"


#: names of the annealing-placement layer that DESIGN.md's "Annealing
#: placement" section must pin down (ISSUE 10)
PLACER_DOC_NAMES = ("Annealing placement", "HpwlKernel", "MoveBatch",
                    "delta_hpwl", "delta_hpwl_scalar", "first_claim",
                    "AnnealConfig", "anneal:default", "lambda_scale",
                    "total_hpwl", "refine_design", "cache_material",
                    "bench_placer.py", "repro-fbb place", "--placer")


def test_annealing_placement_documented():
    """DESIGN.md must describe the cost model, the batched-move
    vectorization and its scalar equivalence oracle, and the seeded
    determinism contract of the annealing placer."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    missing = [name for name in PLACER_DOC_NAMES if name not in text]
    assert not missing, f"DESIGN.md does not mention: {missing}"


def test_documented_placers_exist():
    """Every placer name DESIGN.md lists must be registered, and every
    registered placer must be documented there."""
    _ensure_src_on_path()
    from repro.placement.registry import place_registry
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    for name in place_registry.names(include_aliases=True):
        assert f"`{name}" in text, (
            f"DESIGN.md does not document placer {name!r}")


def test_placer_bench_artifact_documented():
    """EXPERIMENTS.md must track the annealing-placer benchmark."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ("bench_placer.py", "out/placer.txt"):
        assert name in text, f"EXPERIMENTS.md does not mention {name}"


def test_tutorial_shows_annealing_placer():
    """TUTORIAL.md must carry the annealing walkthrough (the Python
    block is executed, the CLI lines parser-validated)."""
    text = (REPO_ROOT / "TUTORIAL.md").read_text(encoding="utf-8")
    assert 'placer="anneal:quick"' in text
    assert "repro-fbb place" in text
    assert "--placer" in text


def test_tutorial_shows_lifetime():
    """TUTORIAL.md must carry the lifetime walkthrough (the Python
    block is executed, the CLI lines parser-validated)."""
    text = (REPO_ROOT / "TUTORIAL.md").read_text(encoding="utf-8")
    assert "run_lifetime" in text
    assert "DriftModel" in text
    assert "repro-fbb lifetime" in text


def test_tutorial_shows_serving_layer():
    """TUTORIAL.md must carry the serving walkthrough (the
    ServerThread block is executed, the CLI lines parser-validated)."""
    text = (REPO_ROOT / "TUTORIAL.md").read_text(encoding="utf-8")
    assert "ServerThread" in text
    assert "repro-fbb serve" in text
    assert "repro-fbb cache" in text


def test_tutorial_shows_batched_engine():
    """TUTORIAL.md must carry the batched-calibration walkthrough (the
    Python block is executed, the CLI line parser-validated)."""
    text = (REPO_ROOT / "TUTORIAL.md").read_text(encoding="utf-8")
    assert 'mode="batched"' in text
    assert "--tuning-engine batched" in text


def test_tutorial_shows_grouping_flag():
    """TUTORIAL.md must carry the --grouping bands:8 walkthrough (the
    CLI line is parser-validated by test_tutorial_cli_lines_parse)."""
    text = (REPO_ROOT / "TUTORIAL.md").read_text(encoding="utf-8")
    assert "--grouping bands:8" in text
    assert "solve_grouped" in text


# -- TUTORIAL.md: executable documentation ---------------------------------

def _fenced_blocks(language: str) -> list[str]:
    text = (REPO_ROOT / "TUTORIAL.md").read_text(encoding="utf-8")
    return re.findall(rf"```{language}\n(.*?)```", text, re.S)


def test_tutorial_python_blocks_execute_in_order():
    """Every Python block in TUTORIAL.md runs (shared namespace), so
    each referenced symbol and each asserted behaviour is guarded."""
    _ensure_src_on_path()
    blocks = _fenced_blocks("python")
    assert len(blocks) >= 8, "TUTORIAL.md lost its walkthrough blocks"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        code = compile(block, f"TUTORIAL.md:python-block-{index}", "exec")
        exec(code, namespace)  # noqa: S102 - executable documentation


def test_tutorial_cli_lines_parse():
    """Every `repro-fbb` line in TUTORIAL.md must name a real
    subcommand and only real flags of that subcommand."""
    _ensure_src_on_path()
    from repro.cli import build_parser
    parser = build_parser()
    subactions = next(
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices)
    commands = []
    for block in _fenced_blocks("sh"):
        text = block.replace("\\\n", " ")
        commands += [line.strip() for line in text.splitlines()
                     if line.strip().startswith("repro-fbb")]
    assert commands, "TUTORIAL.md lost its CLI examples"
    for command in commands:
        tokens = command.split()[1:]
        subcommand, rest = tokens[0], tokens[1:]
        assert subcommand in subactions.choices, (
            f"TUTORIAL.md references unknown subcommand: {command}")
        known_flags = set(
            subactions.choices[subcommand]._option_string_actions)
        used_flags = [token for token in rest if token.startswith("--")]
        unknown = [flag for flag in used_flags if flag not in known_flags]
        assert not unknown, (
            f"TUTORIAL.md uses unknown flags {unknown} in: {command}")


# -- cross-document references ---------------------------------------------

#: the documents whose internal references must resolve
CROSS_REF_DOCS = ("README.md", "DESIGN.md", "TUTORIAL.md",
                  "EXPERIMENTS.md", "CHANGES.md", "ROADMAP.md")

#: backticked repo paths, e.g. `src/repro/flow/parallel.py`
PATH_REFERENCE = re.compile(
    r"`((?:src|tests|benchmarks|examples)/[\w./-]+\.(?:py|md|txt))`")

#: markdown links [text](target)
LINK_REFERENCE = re.compile(r"\[[^\]]+\]\(([^)#][^)]*)\)")


def test_cross_document_references_resolve():
    """No dangling markdown links or backticked repo paths across the
    root documents (benchmarks/out artefacts are generated, exempt)."""
    missing = []
    for doc in CROSS_REF_DOCS:
        text = (REPO_ROOT / doc).read_text(encoding="utf-8")
        references = set(PATH_REFERENCE.findall(text))
        references |= {target for target in LINK_REFERENCE.findall(text)
                       if "://" not in target}
        for reference in sorted(references):
            if reference.startswith("benchmarks/out/"):
                continue
            if not (REPO_ROOT / reference).exists():
                missing.append(f"{doc}: dangling reference {reference}")
    assert not missing, "\n".join(missing)


# -- module docstring policy (make lint, beyond the registry) --------------

def test_every_module_docstring_names_its_paper_anchor():
    """Every public module under src/repro carries a module docstring
    that names its paper anchor — the policy now lives in the
    ``paper-anchor`` checker of :mod:`repro.lint`; this test is the
    thin tier-1 wrapper that keeps it in the default suite."""
    _ensure_src_on_path()
    from repro.lint import lint_paths
    findings = lint_paths([REPO_ROOT / "src"], rules=["paper-anchor"],
                          root=REPO_ROOT)
    assert not findings, "\n".join(f.format() for f in findings)
