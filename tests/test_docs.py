"""Docs consistency: every referenced markdown document must exist.

The seed shipped docstrings citing a DESIGN.md that did not exist; this
check (also wired up as ``make docs-check``) greps the tree for
markdown references and fails on any dangling one, so the docs layer
can never silently fall behind the code again.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: uppercase-named markdown docs (DESIGN.md, README.md, ...) cited in
#: code or other docs; lowercase .md names are left alone (they are
#: usually external or illustrative)
MARKDOWN_REFERENCE = re.compile(r"\b([A-Z][A-Za-z0-9_-]*\.md)\b")

SCAN_DIRECTORIES = ("src", "tests", "examples", "benchmarks")


def iter_markdown_references():
    paths = [path
             for directory in SCAN_DIRECTORIES
             for path in sorted((REPO_ROOT / directory).rglob("*.py"))]
    paths += sorted(REPO_ROOT.glob("*.md"))
    paths += sorted(REPO_ROOT.glob("*.py"))
    for path in paths:
        text = path.read_text(encoding="utf-8", errors="replace")
        for match in MARKDOWN_REFERENCE.finditer(text):
            yield path.relative_to(REPO_ROOT), match.group(1)


def test_referenced_markdown_docs_exist():
    missing = sorted({
        f"{source}: references missing {name}"
        for source, name in iter_markdown_references()
        if not (REPO_ROOT / name).is_file()})
    assert not missing, "\n".join(missing)


def test_core_docs_present():
    """The documentation layer the docstrings rely on must ship."""
    for name in ("README.md", "DESIGN.md", "ROADMAP.md"):
        assert (REPO_ROOT / name).is_file(), f"{name} is missing"


#: public names of the repro.api layer that README.md and DESIGN.md
#: must document (ISSUE 2's API section)
API_DOC_NAMES = ("repro.api", "RunSpec", "RunResult", "ArtifactCache",
                 "solver registry", "repro-fbb sweep")


def test_api_layer_documented():
    """The facade's names must appear in both user-facing documents."""
    missing = []
    for doc in ("README.md", "DESIGN.md"):
        text = (REPO_ROOT / doc).read_text(encoding="utf-8")
        for name in API_DOC_NAMES:
            if name not in text:
                missing.append(f"{doc}: does not mention {name!r}")
    assert not missing, "\n".join(missing)


#: names of the parallel execution layer that DESIGN.md's "Parallel
#: execution" section must pin down (ISSUE 3)
PARALLEL_DOC_NAMES = ("Parallel execution", "workers", "ProcessPool",
                      "os.replace", "tune_population",
                      "flow/parallel.py")


def test_parallel_execution_documented():
    """DESIGN.md must describe the worker/cache topology and the
    determinism contract of the parallel engine."""
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    missing = [name for name in PARALLEL_DOC_NAMES if name not in text]
    assert not missing, f"DESIGN.md does not mention: {missing}"


def test_parallel_bench_artifact_documented():
    """EXPERIMENTS.md must track the parallel speedup benchmark."""
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ("bench_parallel.py", "out/parallel.txt"):
        assert name in text, f"EXPERIMENTS.md does not mention {name}"


def test_documented_solver_methods_exist():
    """Every method name DESIGN.md's API section lists must be
    registered, so the docs cannot drift from the registry."""
    import re
    import sys
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.core import registry
    text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    documented = set(re.findall(
        r"`((?:ilp|heuristic):[a-z_-]+|single_bb)`", text))
    assert documented, "DESIGN.md lists no solver-registry methods"
    registered = set(registry.names(include_aliases=True))
    assert documented <= registered, (
        f"DESIGN.md documents unregistered methods: "
        f"{sorted(documented - registered)}")
