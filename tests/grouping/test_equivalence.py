"""Property tests for the grouping equivalence contract.

Two guarantees the bias-domain layer must never break:

* **Identity bit-identity** — solving through the full
  aggregate/solve/expand machinery with an identity grouping must
  reproduce the ungrouped per-row solution *bit for bit*, for every
  solver family (``single_bb``, both heuristic strategies and the
  from-scratch ``ilp:branch_bound``).
* **Expansion feasibility** — whatever the grouping, the expanded
  per-row assignment must pass ``FBBProblem.check_timing`` on the
  *ungrouped* problem: the reduction is exact, so a feasible domain
  solution is a feasible row solution.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_problem, solve
from repro.grouping import (RowGrouping, reduce_problem, resolve_grouping,
                            solve_grouped)
from tests.grouping.conftest import CLIB

#: every solver family the identity contract is pinned on (highs is the
#: same formulation as branch_bound behind a faster backend)
SOLVERS = ("single_bb", "heuristic:row-descent", "heuristic:level-sweep",
           "ilp:branch_bound")


def random_contiguous_grouping(data, num_rows: int) -> RowGrouping:
    """Draw a random contiguous banding of ``num_rows`` rows."""
    num_groups = data.draw(st.integers(1, num_rows), label="num_groups")
    if num_groups == num_rows:
        return RowGrouping.identity(num_rows)
    # num_groups - 1 distinct cut points inside (0, num_rows)
    cuts = data.draw(
        st.lists(st.integers(1, num_rows - 1), min_size=num_groups - 1,
                 max_size=num_groups - 1, unique=True),
        label="cuts")
    bounds = [0] + sorted(cuts) + [num_rows]
    return RowGrouping.from_band_sizes(
        [hi - lo for lo, hi in zip(bounds, bounds[1:])], name="drawn")


@pytest.mark.parametrize("method", SOLVERS)
def test_identity_grouping_is_bit_identical(problem_tiny, method):
    """Satellite contract: identity reproduces today's per-row solution
    bit-identically across solvers — through the *reduction* machinery,
    not just the passthrough.  (The tiny instance keeps the
    from-scratch branch & bound in budget; the larger-problem variant
    below covers the polynomial solvers.)"""
    direct = solve(problem_tiny, method, 3)
    aggregated = reduce_problem(
        problem_tiny, RowGrouping.identity(problem_tiny.num_rows))
    via_reduce = solve(aggregated, method, 3)
    via_spec = solve_grouped(problem_tiny, method, 3, grouping="identity")
    assert via_reduce.levels == direct.levels
    assert via_spec.levels == direct.levels
    assert via_reduce.leakage_nw == direct.leakage_nw
    assert via_spec.leakage_nw == direct.leakage_nw


@pytest.mark.parametrize("method",
                         ("single_bb", "heuristic:row-descent",
                          "heuristic:level-sweep", "ilp:highs"))
def test_identity_bit_identical_on_larger_problem(problem_small, method):
    """The identity contract on a bigger instance (HiGHS stands in for
    the exponential from-scratch backend)."""
    direct = solve(problem_small, method, 3)
    aggregated = reduce_problem(
        problem_small, RowGrouping.identity(problem_small.num_rows))
    via_reduce = solve(aggregated, method, 3)
    assert via_reduce.levels == direct.levels


@pytest.mark.parametrize("method", SOLVERS)
def test_identity_bit_identical_on_spatial_problem(problem_tiny_spatial,
                                                   method):
    """The same contract on a heterogeneous (sensed-field) problem."""
    direct = solve(problem_tiny_spatial, method, 3)
    aggregated = reduce_problem(
        problem_tiny_spatial,
        RowGrouping.identity(problem_tiny_spatial.num_rows))
    via_reduce = solve(aggregated, method, 3)
    assert via_reduce.levels == direct.levels


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_any_grouping_expands_to_feasible_assignment(problem_small, data):
    """Any contiguous grouping's expanded heuristic assignment passes
    CheckTiming on the ungrouped problem."""
    grouping = random_contiguous_grouping(data, problem_small.num_rows)
    solution = solve_grouped(problem_small, "heuristic:row-descent", 3,
                             grouping=grouping)
    assert len(solution.levels) == problem_small.num_rows
    assert problem_small.check_timing(solution.levels_array)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_any_grouping_expands_feasibly_across_solvers(problem_tiny,
                                                      data):
    """The expansion-feasibility contract holds for every solver family,
    not just the default heuristic (tiny instance: the branch & bound
    backend is in the draw)."""
    grouping = random_contiguous_grouping(data, problem_tiny.num_rows)
    method = data.draw(st.sampled_from(SOLVERS), label="method")
    solution = solve_grouped(problem_tiny, method, 3, grouping=grouping)
    assert problem_tiny.check_timing(solution.levels_array)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_any_grouping_feasible_on_spatial_problem(problem_spatial, data):
    """Expansion feasibility against heterogeneous per-row slowdowns —
    the field the correlation strategy exists for."""
    grouping = random_contiguous_grouping(data, problem_spatial.num_rows)
    solution = solve_grouped(problem_spatial, "heuristic:row-descent", 3,
                             grouping=grouping)
    assert problem_spatial.check_timing(solution.levels_array)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_groups=st.integers(1, 8))
def test_strategy_specs_expand_feasibly(placed_small, seed, num_groups):
    """Registry strategies (not just hand-drawn bands) resolve and
    expand feasibly against random sensed fields."""
    rng = np.random.default_rng(seed)
    betas = rng.uniform(0.0, 0.08, size=placed_small.num_rows)
    problem = build_problem(placed_small, CLIB, betas)
    for spec in (f"bands:{num_groups}", f"correlation:{num_groups}",
                 f"community:{num_groups}"):
        resolved = resolve_grouping(spec, problem, placed=placed_small)
        solution = solve_grouped(problem, "heuristic:row-descent", 3,
                                 grouping=resolved)
        assert problem.check_timing(solution.levels_array)
        assert solution.num_groups == resolved.num_groups
