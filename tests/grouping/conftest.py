"""Shared fixtures for the grouping suite: a small placed benchmark,
its per-row problem, and a heterogeneous (spatial) variant."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.core import build_problem
from repro.placement import place_design
from repro.synth import map_netlist, size_for_load
from repro.tech import characterize_library, reduced_library

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


def _place(**kwargs):
    mapped = map_netlist(c1355_like(**kwargs), LIBRARY)
    size_for_load(mapped, LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="session")
def placed_small():
    return _place(data_width=10, check_bits=5)


@pytest.fixture(scope="session")
def placed_tiny():
    """Small enough for the from-scratch branch & bound ILP."""
    return _place(data_width=4, check_bits=2)


@pytest.fixture(scope="session")
def problem_small(placed_small):
    return build_problem(placed_small, CLIB, beta=0.05)


@pytest.fixture(scope="session")
def problem_tiny(placed_tiny):
    return build_problem(placed_tiny, CLIB, beta=0.05)


def _spatial_betas(num_rows):
    return 0.02 + 0.06 * np.linspace(0.0, 1.0, num_rows) ** 2


@pytest.fixture(scope="session")
def problem_spatial(placed_small):
    """Heterogeneous per-row slowdowns: a sensed-field-shaped problem."""
    return build_problem(placed_small, CLIB,
                         _spatial_betas(placed_small.num_rows))


@pytest.fixture(scope="session")
def problem_tiny_spatial(placed_tiny):
    return build_problem(placed_tiny, CLIB,
                         _spatial_betas(placed_tiny.num_rows))
