"""Tests for the bias-domain grouping layer: RowGrouping, the strategy
registry (including the ``make lint`` docstring policy), problem
reduction and solution expansion."""

from pathlib import Path

import numpy as np
import pytest

from repro.core import build_problem, solve, solve_single_bb
from repro.errors import AllocationError, GroupingError
from repro.grouping import (GroupingContext, GroupingRegistry, RowGrouping,
                            grouping_registry, is_field_driven,
                            make_grouping, parse_grouping_spec,
                            reduce_problem, resolve_grouping, solve_grouped,
                            validate_grouping_spec)
from tests.grouping.conftest import CLIB

EXPECTED_STRATEGIES = ("bands", "community", "correlation", "identity")
EXPECTED_ALIASES = ("corr", "netlist")


class TestRowGrouping:
    def test_identity_shape(self):
        grouping = RowGrouping.identity(5)
        assert grouping.num_rows == 5
        assert grouping.num_groups == 5
        assert grouping.is_identity
        assert grouping.is_contiguous

    def test_bands_split_matches_sensor_grid_convention(self):
        grouping = RowGrouping.contiguous_bands(10, 3)
        # same divmod split as SpatialSensorGrid: sizes 4, 3, 3
        assert grouping.group_of_row == (0, 0, 0, 0, 1, 1, 1, 2, 2, 2)
        assert not grouping.is_identity
        assert grouping.is_contiguous

    def test_more_bands_than_rows_degenerates_to_identity(self):
        grouping = RowGrouping.contiguous_bands(4, 9)
        assert grouping.is_identity

    def test_label_gaps_rejected(self):
        with pytest.raises(GroupingError, match="no gaps"):
            RowGrouping(name="bad", group_of_row=(0, 2, 2))

    def test_negative_labels_rejected(self):
        with pytest.raises(GroupingError, match="negative"):
            RowGrouping(name="bad", group_of_row=(0, -1))

    def test_empty_rejected(self):
        with pytest.raises(GroupingError, match="no rows"):
            RowGrouping(name="bad", group_of_row=())

    def test_expand_and_rows_of_groups(self):
        grouping = RowGrouping.from_band_sizes([2, 1, 3])
        assert grouping.rows_of_groups() == ((0, 1), (2,), (3, 4, 5))
        expanded = grouping.expand(np.array([5, 7, 9]))
        assert expanded.tolist() == [5, 5, 7, 9, 9, 9]

    def test_expand_shape_checked(self):
        grouping = RowGrouping.from_band_sizes([2, 2])
        with pytest.raises(GroupingError, match="per-domain"):
            grouping.expand(np.zeros(3))

    def test_indicator_sums_rows(self):
        grouping = RowGrouping.from_band_sizes([1, 2])
        matrix = np.arange(6.0).reshape(3, 2)
        reduced = np.asarray(grouping.indicator().T @ matrix)
        assert reduced.tolist() == [[0.0, 1.0], [6.0, 8.0]]

    def test_aggregate_max(self):
        grouping = RowGrouping.from_band_sizes([2, 2])
        out = grouping.aggregate_max(np.array([0.1, 0.4, 0.2, 0.0]))
        assert out.tolist() == [0.4, 0.2]

    def test_non_contiguous_allowed_but_flagged(self):
        grouping = RowGrouping(name="interleaved",
                               group_of_row=(0, 1, 0, 1))
        assert not grouping.is_contiguous
        assert grouping.num_groups == 2


class TestSpecParsing:
    def test_parse_variants(self):
        assert parse_grouping_spec("identity") == ("identity", None)
        assert parse_grouping_spec("bands:8") == ("bands", 8)

    def test_parse_rejects_garbage(self):
        with pytest.raises(GroupingError, match="not an integer"):
            parse_grouping_spec("bands:many")
        with pytest.raises(GroupingError, match="at least one"):
            parse_grouping_spec("bands:0")
        with pytest.raises(GroupingError, match="non-empty"):
            parse_grouping_spec("")

    def test_validate_requires_param(self):
        with pytest.raises(GroupingError, match="needs a domain count"):
            validate_grouping_spec("bands")
        with pytest.raises(GroupingError, match="takes no parameter"):
            validate_grouping_spec("identity:3")

    def test_validate_resolves_aliases(self):
        assert validate_grouping_spec("corr:4") == "correlation:4"
        assert validate_grouping_spec("netlist:4") == "community:4"

    def test_unknown_strategy_lists_alternatives(self):
        with pytest.raises(GroupingError, match="bands"):
            validate_grouping_spec("voronoi:4")

    def test_field_driven_flag(self):
        assert is_field_driven("correlation:4")
        assert is_field_driven("corr:4")
        assert not is_field_driven("bands:4")
        assert not is_field_driven("identity")


class TestRegistryPolicy:
    def test_expected_strategies_registered(self):
        assert grouping_registry.names() == EXPECTED_STRATEGIES

    def test_aliases_resolve(self):
        for alias in EXPECTED_ALIASES:
            assert grouping_registry.get(alias).name in EXPECTED_STRATEGIES

    def test_every_entry_has_docstring(self):
        """The build-breaking policy ``make lint`` runs: no undocumented
        grouping strategies (mirrors the solver-registry rule).
        Statically enforced by the ``registry-docstring`` checker of
        :mod:`repro.lint` over the grouping package; the summary line
        stays a runtime assertion."""
        from repro.lint import lint_paths
        src = Path(__file__).resolve().parents[2] / "src"
        findings = lint_paths([src / "repro" / "grouping"],
                              rules=["registry-docstring"], root=src)
        assert not findings, "\n".join(f.format() for f in findings)
        for entry in grouping_registry.entries():
            doc = (entry.func.__doc__ or "").strip()
            assert doc, f"grouping entry {entry.name!r} has no docstring"
            assert entry.summary == doc.splitlines()[0].strip()

    def test_registration_rejects_undocumented(self):
        registry = GroupingRegistry()

        def naked(context, param):
            return RowGrouping.identity(context.num_rows)

        with pytest.raises(GroupingError, match="docstring"):
            registry.register("naked", naked)

    def test_duplicate_registration_rejected(self):
        registry = GroupingRegistry()

        def documented(context, param):
            """A documented strategy."""
            return RowGrouping.identity(context.num_rows)

        registry.register("dup", documented)
        with pytest.raises(GroupingError, match="already registered"):
            registry.register("dup", documented)


class TestStrategies:
    def test_identity_strategy(self):
        grouping = make_grouping("identity", GroupingContext(num_rows=7))
        assert grouping.is_identity

    def test_bands_strategy(self):
        grouping = make_grouping("bands:3", GroupingContext(num_rows=10))
        assert grouping.num_groups == 3
        assert grouping.is_contiguous
        assert grouping.name == "bands:3"

    def test_correlation_merges_similar_neighbours(self):
        # Two sharply distinct plateaus: the boundary must land between
        # them, whatever the merge order.
        betas = np.array([0.01, 0.01, 0.01, 0.2, 0.2, 0.2])
        grouping = make_grouping(
            "correlation:2",
            GroupingContext(num_rows=6, row_betas=betas))
        assert grouping.group_of_row == (0, 0, 0, 1, 1, 1)

    def test_correlation_without_field_gives_balanced_bands(self):
        grouping = make_grouping("correlation:2",
                                 GroupingContext(num_rows=8))
        assert grouping.num_groups == 2
        sizes = grouping.group_sizes()
        assert abs(int(sizes[0]) - int(sizes[1])) <= 1

    def test_correlation_deterministic(self):
        rng = np.random.default_rng(3)
        betas = rng.uniform(0.0, 0.1, size=20)
        context = GroupingContext(num_rows=20, row_betas=betas)
        first = make_grouping("correlation:5", context)
        second = make_grouping("correlation:5", context)
        assert first.group_of_row == second.group_of_row

    def test_community_needs_placed(self):
        with pytest.raises(GroupingError, match="placed design"):
            make_grouping("community:2", GroupingContext(num_rows=4))

    def test_community_contiguous_bands(self, placed_small):
        grouping = make_grouping(
            "community:4",
            GroupingContext(num_rows=placed_small.num_rows,
                            placed=placed_small))
        assert grouping.num_groups == 4
        assert grouping.is_contiguous
        assert grouping.num_rows == placed_small.num_rows

    def test_context_validates_row_betas_shape(self):
        with pytest.raises(GroupingError, match="shape"):
            GroupingContext(num_rows=4, row_betas=np.zeros(3))


class TestReduceProblem:
    def test_reduced_shape(self, problem_small):
        grouping = RowGrouping.contiguous_bands(problem_small.num_rows, 4)
        reduced = reduce_problem(problem_small, grouping)
        assert reduced.num_rows == 4
        assert reduced.num_constraints == problem_small.num_constraints
        assert reduced.vbs_levels == problem_small.vbs_levels
        assert reduced.dcrit_ps == problem_small.dcrit_ps

    def test_leakage_aggregates_exactly(self, problem_small):
        grouping = RowGrouping.contiguous_bands(problem_small.num_rows, 3)
        reduced = reduce_problem(problem_small, grouping)
        for group, rows in enumerate(grouping.rows_of_groups()):
            expected = problem_small.leakage_nw[list(rows)].sum(axis=0)
            assert np.allclose(reduced.leakage_nw[group], expected)

    def test_recovery_aggregates_exactly(self, problem_small):
        grouping = RowGrouping.contiguous_bands(problem_small.num_rows, 3)
        reduced = reduce_problem(problem_small, grouping)
        dense = problem_small.recovery.toarray()
        for group, rows in enumerate(grouping.rows_of_groups()):
            expected = dense[:, list(rows)].sum(axis=1)
            assert np.allclose(
                np.asarray(reduced.recovery[:, group].todense()).ravel(),
                expected)

    def test_row_betas_reduce_by_max(self, problem_spatial):
        grouping = RowGrouping.contiguous_bands(
            problem_spatial.num_rows, 3)
        reduced = reduce_problem(problem_spatial, grouping)
        for group, rows in enumerate(grouping.rows_of_groups()):
            assert reduced.row_betas[group] == \
                problem_spatial.row_betas[list(rows)].max()

    def test_grouped_cost_equals_expanded_cost(self, problem_small):
        grouping = RowGrouping.contiguous_bands(problem_small.num_rows, 4)
        reduced = reduce_problem(problem_small, grouping)
        group_levels = np.array([3, 0, 2, 1])
        expanded = grouping.expand(group_levels)
        assert reduced.total_leakage_nw(group_levels) == pytest.approx(
            problem_small.total_leakage_nw(expanded), rel=1e-12)
        assert np.allclose(reduced.path_slacks_ps(group_levels),
                           problem_small.path_slacks_ps(expanded))

    def test_row_count_mismatch_rejected(self, problem_small):
        with pytest.raises(GroupingError, match="covers"):
            reduce_problem(problem_small, RowGrouping.identity(3))


class TestSolveGrouped:
    def test_expand_to_records_grouping(self, problem_small, placed_small):
        solution = solve_grouped(problem_small, "heuristic", 3,
                                 grouping="bands:4", placed=placed_small)
        assert solution.problem is problem_small
        assert len(solution.levels) == problem_small.num_rows
        assert solution.num_groups == 4
        assert solution.grouping_name == "bands:4"
        assert solution.extras["group_levels"] == [
            solution.levels[rows[0]] for rows in
            RowGrouping.contiguous_bands(
                problem_small.num_rows, 4).rows_of_groups()]
        assert solution.is_timing_feasible

    def test_identity_passthrough_has_no_grouping_extras(
            self, problem_small):
        solution = solve_grouped(problem_small, "heuristic", 3,
                                 grouping="identity")
        assert "grouping" not in solution.extras
        assert solution.grouping_name == "identity"
        assert solution.num_groups == problem_small.num_rows

    def test_coarse_grouping_never_beats_identity(self, problem_small):
        identity = solve_grouped(problem_small, "ilp:highs", 3,
                                 grouping="identity")
        coarse = solve_grouped(problem_small, "ilp:highs", 3,
                               grouping="bands:2")
        assert coarse.leakage_nw >= identity.leakage_nw - 1e-9

    def test_domain_count_capped_by_grouping(self, problem_small):
        solution = solve_grouped(problem_small, "heuristic", 3,
                                 grouping="bands:4")
        assert solution.num_domains <= 4
        assert solution.num_clusters <= 3

    def test_prebuilt_grouping_accepted(self, problem_small):
        grouping = RowGrouping.contiguous_bands(problem_small.num_rows, 2)
        solution = solve_grouped(problem_small, "single_bb", 1,
                                 grouping=grouping)
        assert solution.is_timing_feasible

    def test_resolve_rejects_mismatched_prebuilt(self, problem_small):
        with pytest.raises(GroupingError, match="covers"):
            resolve_grouping(RowGrouping.identity(2), problem_small)

    def test_expand_to_shape_mismatch_rejected(self, problem_small):
        solution = solve(problem_small, "single_bb")
        with pytest.raises(AllocationError, match="domain levels"):
            solution.expand_to(
                problem_small,
                RowGrouping.contiguous_bands(problem_small.num_rows, 2))


class TestBuildProblemGrouping:
    def test_build_problem_grouping_param(self, placed_small):
        reduced = build_problem(placed_small, CLIB, 0.05,
                                grouping="bands:4")
        full = build_problem(placed_small, CLIB, 0.05)
        assert reduced.num_rows == 4
        assert full.num_rows == placed_small.num_rows
        assert np.allclose(reduced.leakage_nw.sum(axis=0),
                           full.leakage_nw.sum(axis=0))

    def test_build_problem_identity_is_same_output(self, placed_small):
        plain = build_problem(placed_small, CLIB, 0.05)
        via_identity = build_problem(placed_small, CLIB, 0.05,
                                     grouping="identity")
        assert via_identity.num_rows == plain.num_rows
        assert np.array_equal(via_identity.leakage_nw, plain.leakage_nw)
        assert np.array_equal(via_identity.required_ps, plain.required_ps)

    def test_build_problem_community_spec(self, placed_small):
        reduced = build_problem(placed_small, CLIB, 0.05,
                                grouping="community:3")
        assert reduced.num_rows == 3


class TestDomainCounts:
    def test_num_domains_counts_runs(self, problem_small):
        levels = np.zeros(problem_small.num_rows, dtype=int)
        assert problem_small.num_domains(levels) == 1
        levels[::2] = 1  # fully interleaved
        assert problem_small.num_domains(levels) == problem_small.num_rows
        assert problem_small.num_clusters(levels) == 2

    def test_single_bb_is_one_domain(self, problem_small):
        solution = solve_single_bb(problem_small)
        assert solution.num_domains == 1
        assert solution.num_clusters == 1
