"""Tests for the repro.api facade: RunSpec/RunResult serialization,
cache-backed execution, and numerical parity with the direct call paths.
"""

import json

import pytest

from repro.api import (RunResult, RunSpec, population_row_from_payload,
                       population_row_payload, run, run_many, solver_names,
                       table1_row_from_payload, table1_row_payload)
from repro.core import build_problem, solve_heuristic, solve_single_bb
from repro.errors import SpecError
from repro.flow import (ArtifactCache, ExperimentConfig, PopulationConfig,
                        implement, run_design_beta, run_population)


@pytest.fixture(scope="module")
def cache():
    return ArtifactCache()


@pytest.fixture(scope="module")
def flow(cache):
    return implement("c1355", cache=cache)


class TestRunSpec:
    def test_json_round_trip_bit_identical(self):
        spec = RunSpec(kind="table1", design="c5315", beta=0.10,
                       cluster_budgets=(2, 3, 4), seed=7,
                       tech={"vth0_n": 0.47})
        text = spec.to_json()
        recovered = RunSpec.from_json(text)
        assert recovered == spec
        assert recovered.to_json() == text

    def test_dict_round_trip_restores_tuples(self):
        spec = RunSpec(cluster_budgets=(2, 3))
        data = json.loads(spec.to_json())
        assert data["cluster_budgets"] == [2, 3]
        assert RunSpec.from_dict(data).cluster_budgets == (2, 3)

    def test_spec_hash_is_content_addressed(self):
        assert RunSpec(seed=1).spec_hash() == RunSpec(seed=1).spec_hash()
        assert RunSpec(seed=1).spec_hash() != RunSpec(seed=2).spec_hash()

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            RunSpec(kind="fig7")

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown RunSpec fields"):
            RunSpec.from_dict({"kind": "allocate", "solver": "ilp"})

    def test_newer_schema_rejected(self):
        with pytest.raises(SpecError, match="schema"):
            RunSpec(schema_version=99)

    def test_validation(self):
        with pytest.raises(SpecError):
            RunSpec(beta=-0.1)
        with pytest.raises(SpecError):
            RunSpec(clusters=0)
        with pytest.raises(SpecError):
            RunSpec(num_dies=0)

    def test_technology_overrides(self):
        tech = RunSpec(tech={"vth0_n": 0.48}).technology()
        assert tech.vth0_n == 0.48
        nested = RunSpec(
            tech={"bias_rules": {"max_bias_rails": 1}}).technology()
        assert nested.bias_rules.max_bias_rails == 1
        with pytest.raises(SpecError, match="bad tech overrides"):
            RunSpec(tech={"not_a_knob": 1}).technology()

    def test_solver_names_exposed(self):
        names = solver_names()
        assert "ilp:highs" in names
        assert "heuristic" in names  # aliases included by default

    def test_workers_is_an_execution_knob_not_key_material(self):
        """workers parallelizes execution without changing the result,
        so it must not participate in the content address."""
        assert RunSpec(workers=1).spec_hash() \
            == RunSpec(workers=4).spec_hash()
        material = RunSpec(workers=4).cache_material()
        assert "workers" not in material
        assert RunSpec(workers=4).to_dict()["workers"] == 4  # serialized

    def test_workers_round_trips_and_validates(self):
        spec = RunSpec(workers=3)
        assert RunSpec.from_json(spec.to_json()) == spec
        with pytest.raises(SpecError, match="workers"):
            RunSpec(workers=0)


class TestRunResultRoundTrip:
    def test_allocate_result_bit_identical(self, cache):
        spec = RunSpec(kind="allocate", design="c1355", beta=0.05)
        result = run(spec, cache=cache)
        text = result.to_json()
        recovered = RunResult.from_json(text)
        assert recovered == result
        assert recovered.to_json() == text

    def test_malformed_result_rejected(self):
        with pytest.raises(SpecError, match="malformed"):
            RunResult.from_dict({"payload": {}})

    def test_kind_mismatch_decoding_rejected(self, cache):
        result = run(RunSpec(kind="allocate", design="c1355"), cache=cache)
        with pytest.raises(SpecError, match="not a table1"):
            result.to_table1_row()
        with pytest.raises(SpecError, match="not a population"):
            result.to_population_row()


class TestCacheSemantics:
    def test_rerun_hits_cache_with_identical_payload(self, cache):
        spec = RunSpec(kind="allocate", design="c1355", beta=0.05,
                       method="heuristic:level-sweep")
        cold = run(spec, cache=cache)
        warm = run(spec, cache=cache)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.payload == cold.payload
        assert cache.stats()["by_kind"]["run"]["hits"] >= 1

    def test_use_cache_false_reexecutes(self, cache):
        spec = RunSpec(kind="allocate", design="c1355", beta=0.05)
        run(spec, cache=cache)
        fresh = run(spec, cache=cache, use_cache=False)
        assert not fresh.cache_hit

    def test_different_specs_do_not_collide(self, cache):
        a = run(RunSpec(kind="allocate", design="c1355", beta=0.05,
                        clusters=2), cache=cache)
        b = run(RunSpec(kind="allocate", design="c1355", beta=0.05,
                        clusters=3), cache=cache)
        assert a.payload["savings_pct"] <= b.payload["savings_pct"] + 1e-9

    def test_payloads_are_isolated_from_the_cache(self, cache):
        """Mutating a returned payload must not corrupt later hits."""
        spec = RunSpec(kind="allocate", design="c1355", beta=0.05,
                       clusters=2, method="single_bb")
        first = run(spec, cache=cache)
        pristine = first.payload["savings_pct"]
        first.payload["savings_pct"] = -999.0
        second = run(spec, cache=cache)
        assert second.cache_hit
        assert second.payload["savings_pct"] == pristine
        second.payload["levels"].append(42)
        third = run(spec, cache=cache)
        assert third.payload["levels"] == second.payload["levels"][:-1]

    def test_run_cache_is_keyed_on_spec_hash(self, cache):
        """spec_hash() is the documented run-cache key: the cached
        artifact must be addressable by it directly."""
        spec = RunSpec(kind="allocate", design="c1355", beta=0.05,
                       method="heuristic:level-sweep", clusters=2)
        result = run(spec, cache=cache)
        found, payload = cache.lookup("run", spec.spec_hash())
        assert found
        assert payload == result.payload

    def test_run_many_shares_cache(self, cache):
        spec = RunSpec(kind="allocate", design="c1355", beta=0.05,
                       method="single_bb")
        results = run_many([spec, spec], cache=cache)
        assert [r.cache_hit for r in results] == [False, True]
        assert results[0].payload == results[1].payload

    def test_workers_variants_share_one_cache_entry(self, cache):
        """A serial run's artifact must serve a workers=N spec."""
        base = RunSpec(kind="allocate", design="c1355", beta=0.05,
                       method="single_bb")
        cold = run(base, cache=cache)
        warm = run(RunSpec(kind="allocate", design="c1355", beta=0.05,
                           method="single_bb", workers=4), cache=cache)
        assert warm.cache_hit
        assert warm.payload == cold.payload


class TestParityWithDirectPaths:
    """The facade must reproduce the pre-refactor numbers exactly."""

    def test_allocate_matches_direct_solve(self, cache, flow):
        spec = RunSpec(kind="allocate", design="c1355", beta=0.05,
                       method="heuristic:row-descent", clusters=3)
        payload = run(spec, cache=cache).payload
        problem = build_problem(flow.placed, flow.clib, 0.05,
                                analyzer=flow.analyzer,
                                paths=list(flow.paths),
                                dcrit_ps=flow.dcrit_ps)
        baseline = solve_single_bb(problem)
        direct = solve_heuristic(problem, 3, strategy="row-descent")
        assert payload["levels"] == list(direct.levels)
        assert payload["savings_pct"] \
            == direct.savings_vs(baseline.leakage_nw)
        assert payload["baseline_uw"] == baseline.leakage_uw

    def test_table1_matches_run_design_beta(self, cache, flow):
        spec = RunSpec(kind="table1", design="c1355", beta=0.05,
                       ilp_time_limit_s=60.0)
        row = run(spec, cache=cache).to_table1_row()
        config = ExperimentConfig(betas=(0.05,), ilp_time_limit_s=60.0)
        direct = run_design_beta(flow, 0.05, config)
        assert row.design == direct.design
        assert row.single_bb_uw == direct.single_bb_uw
        assert row.ilp_savings == direct.ilp_savings
        assert row.heuristic_savings == direct.heuristic_savings
        assert row.num_constraints == direct.num_constraints

    def test_population_matches_run_population(self, cache, flow):
        spec = RunSpec(kind="population", design="c1355", num_dies=25,
                       seed=11)
        row = run(spec, cache=cache).to_population_row()
        direct = run_population(flow, PopulationConfig(num_dies=25,
                                                       seed=11))
        assert row.beta_mean == direct.beta_mean
        assert row.beta_std == direct.beta_std
        assert row.beta_max == direct.beta_max
        assert row.timing_yield == direct.timing_yield
        assert row.seed == direct.seed == 11

    def test_table1_payload_codec_inverts(self, cache):
        spec = RunSpec(kind="table1", design="c1355", beta=0.05,
                       ilp_time_limit_s=60.0, skip_ilp_above_rows=1)
        row = run(spec, cache=cache).to_table1_row()
        assert row.ilp_savings[2] is None  # skip threshold -> '-' cell
        assert table1_row_from_payload(table1_row_payload(row)) == row

    def test_population_payload_codec_inverts(self, cache, flow):
        row = run_population(flow, PopulationConfig(num_dies=10, seed=2))
        assert population_row_from_payload(
            population_row_payload(row)) == row


class TestSpatialKind:
    """The spatial RunSpec kind: serialization, hashing, execution."""

    SPEC = dict(kind="spatial", design="soc_quad", num_dies=12, seed=9,
                beta_budget=0.02, num_regions=4,
                process={"sigma_intra_v": 0.03,
                         "correlation_length_fraction": 0.5})

    def test_json_round_trip_bit_identical(self):
        spec = RunSpec(**self.SPEC)
        text = spec.to_json()
        recovered = RunSpec.from_json(text)
        assert recovered == spec
        assert recovered.to_json() == text

    def test_hash_stable_across_round_trips(self):
        spec = RunSpec(**self.SPEC)
        assert RunSpec.from_json(spec.to_json()).spec_hash() \
            == spec.spec_hash()
        assert RunSpec(**self.SPEC).spec_hash() == spec.spec_hash()

    def test_workers_stays_an_execution_knob(self):
        """PR 3 semantics carry over: a spatial spec's content address
        must not depend on workers, so serial artifacts serve pooled
        runs and vice versa."""
        serial = RunSpec(**self.SPEC)
        pooled = RunSpec(**dict(self.SPEC, workers=4))
        assert serial.spec_hash() == pooled.spec_hash()
        assert "workers" not in pooled.cache_material()
        assert pooled.to_dict()["workers"] == 4

    def test_experiment_knobs_are_key_material(self):
        base = RunSpec(**self.SPEC)
        assert RunSpec(**dict(self.SPEC, num_regions=8)).spec_hash() \
            != base.spec_hash()
        other = dict(self.SPEC,
                     process={"sigma_intra_v": 0.03,
                              "correlation_length_fraction": 0.25})
        assert RunSpec(**other).spec_hash() != base.spec_hash()

    def test_num_regions_validated(self):
        with pytest.raises(SpecError, match="num_regions"):
            RunSpec(kind="spatial", num_regions=0)

    def test_process_model_materializes(self):
        model = RunSpec(**self.SPEC).process_model()
        assert model.sigma_intra_v == 0.03
        assert model.correlation_length_fraction == 0.5
        assert RunSpec(kind="spatial").process_model() is None
        with pytest.raises(SpecError, match="bad process overrides"):
            RunSpec(kind="spatial",
                    process={"not_a_knob": 1}).process_model()

    def test_executes_matches_run_spatial_and_caches(self, cache):
        from repro.flow import SpatialConfig, implement, run_spatial
        result = run(RunSpec(**self.SPEC), cache=cache)
        row = result.to_spatial_row()
        flow = implement("soc_quad", cache=cache)
        direct = run_spatial(flow, SpatialConfig(
            num_dies=12, seed=9, beta_budget=0.02, num_regions=4,
            model=RunSpec(**self.SPEC).process_model()))
        assert row.spatial_yield == direct.spatial_yield
        assert row.uniform_yield == direct.uniform_yield
        assert row.spatial_leakage_uw == direct.spatial_leakage_uw
        warm = run(RunSpec(**self.SPEC), cache=cache)
        assert warm.cache_hit
        assert warm.payload == result.payload

    def test_decoder_guards_kind(self, cache):
        result = run(RunSpec(kind="allocate", design="c1355"),
                     cache=cache)
        with pytest.raises(SpecError, match="not a spatial"):
            result.to_spatial_row()


class TestDeprecatedShims:
    """run_table1 / run_population_study route through the facade."""

    def test_run_table1_shim_warns_and_matches_facade(self, flow):
        from repro.flow import ExperimentConfig, run_table1
        config = ExperimentConfig(betas=(0.05,), skip_ilp_above_rows=1)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            rows = run_table1(("c1355",), config)
        direct = run_design_beta(flow, 0.05, config)
        assert len(rows) == 1
        assert rows[0].heuristic_savings == direct.heuristic_savings
        assert rows[0].ilp_savings == {2: None, 3: None}

    def test_legacy_flows_path_does_not_warn(self, flow, recwarn):
        from repro.flow import ExperimentConfig, run_table1
        config = ExperimentConfig(betas=(0.05,), skip_ilp_above_rows=1)
        run_table1(("c1355",), config, flows={"c1355": flow})
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_run_population_study_shim_warns_and_matches_facade(self, flow):
        from repro.flow import run_population_study
        config = PopulationConfig(num_dies=15, seed=8)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            rows = run_population_study(("c1355",), config)
        direct = run_population(flow, config)
        assert rows[0].beta_mean == direct.beta_mean
        assert rows[0].timing_yield == direct.timing_yield
        assert rows[0].seed == 8


class TestGroupingSpecAxis:
    """RunSpec.grouping: validated, hash-stable at the default, and a
    real content-address axis at non-default values."""

    #: pre-grouping-layer spec hashes, pinned: the "identity" default
    #: must keep producing exactly these (cache compatibility contract)
    PINNED_HASHES = {
        "allocate": ("063de3e769689a42551908e93d94d914"
                     "3c0b13635c8ec033d2916e017cc5ec55"),
        "table1": ("df4a54b909a0e30109447494e1fe772a"
                   "a13372f6f2c273bb88de80880d62137f"),
        "population": ("dea35a2504697a6c0ccf4d2257f9a9c8"
                       "1402eec33519a5e62dc026444ec2cc9b"),
        "spatial": ("88c5ba6b0d4fd03502415f9035e4e445"
                    "c4eb5069f1041082311efa6c899dee82"),
    }

    def test_default_hashes_pinned_to_pre_grouping_values(self):
        for kind, expected in self.PINNED_HASHES.items():
            assert RunSpec(kind=kind, design="c1355").spec_hash() == \
                expected, f"{kind} spec hash drifted"

    def test_identity_grouping_not_key_material(self):
        spec = RunSpec(kind="allocate", design="c1355")
        assert "grouping" not in spec.cache_material()
        assert spec.to_dict()["grouping"] == "identity"

    def test_non_default_grouping_is_key_material(self):
        plain = RunSpec(kind="allocate", design="c1355")
        banded = RunSpec(kind="allocate", design="c1355",
                         grouping="bands:4")
        assert banded.cache_material()["grouping"] == "bands:4"
        assert banded.spec_hash() != plain.spec_hash()
        assert RunSpec(kind="allocate", design="c1355",
                       grouping="bands:8").spec_hash() != \
            banded.spec_hash()

    def test_pre_grouping_json_still_parses(self):
        spec = RunSpec.from_json(
            '{"kind": "allocate", "design": "c1355", "beta": 0.05}')
        assert spec.grouping == "identity"

    def test_grouping_round_trips(self):
        spec = RunSpec(kind="allocate", design="c1355",
                       grouping="correlation:4")
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_bad_grouping_spec_rejected(self):
        with pytest.raises(SpecError, match="grouping"):
            RunSpec(kind="allocate", design="c1355", grouping="bands:-2")
        with pytest.raises(SpecError, match="grouping"):
            RunSpec(kind="allocate", design="c1355", grouping="mystery:3")

    def test_identity_payload_has_no_grouping_keys(self, cache):
        result = run(RunSpec(kind="allocate", design="c1355"),
                     cache=cache)
        for key in ("grouping", "num_groups", "num_domains"):
            assert key not in result.payload

    def test_grouped_allocate_payload(self, cache, flow):
        result = run(RunSpec(kind="allocate", design="c1355",
                             grouping="bands:4"), cache=cache)
        payload = result.payload
        assert payload["grouping"] == "bands:4"
        assert payload["num_groups"] == 4
        assert payload["num_domains"] <= 4
        assert payload["timing_ok"]
        # the expanded assignment is constant within each band
        from repro.grouping import RowGrouping
        grouping = RowGrouping.contiguous_bands(payload["rows"], 4)
        for rows in grouping.rows_of_groups():
            assert len({payload["levels"][row] for row in rows}) == 1

    def test_grouped_and_identity_results_cached_separately(self, cache):
        plain = run(RunSpec(kind="allocate", design="c1355"), cache=cache)
        banded = run(RunSpec(kind="allocate", design="c1355",
                             grouping="bands:4"), cache=cache)
        assert plain.payload["levels"] != banded.payload["levels"] or \
            plain.payload.keys() != banded.payload.keys()

    def test_grouped_table1_runs(self, cache):
        result = run(RunSpec(kind="table1", design="c1355",
                             grouping="bands:4",
                             skip_ilp_above_rows=1), cache=cache)
        row = result.to_table1_row()
        assert row.heuristic_savings  # solved at domain granularity

    def test_grouped_population_spec_runs(self, cache):
        result = run(RunSpec(kind="population", design="c1355",
                             num_dies=10, tune=True, grouping="bands:3",
                             beta_budget=0.02), cache=cache)
        row = result.to_population_row()
        assert row.tuned_yield is not None


class TestLifetimeKind:
    """The lifetime RunSpec kind: serialization, hash-stable defaults,
    drift materialization, execution parity with run_lifetime_study."""

    SPEC = dict(kind="lifetime", design="c1355", num_dies=12, seed=5,
                epochs=3, cadence=1, beta_budget=0.02,
                drift={"activity_sigma_v": 0.002,
                       "nbti": {"prefactor_v": 0.012}})

    def test_json_round_trip_bit_identical(self):
        spec = RunSpec(**self.SPEC)
        text = spec.to_json()
        recovered = RunSpec.from_json(text)
        assert recovered == spec
        assert recovered.to_json() == text
        assert recovered.spec_hash() == spec.spec_hash()

    def test_default_lifetime_fields_not_key_material(self):
        """Pre-lifetime specs must keep their content addresses: the
        new fields elide at their defaults for every kind."""
        material = RunSpec(kind="allocate", design="c1355").cache_material()
        for fieldname in ("epochs", "cadence", "drift", "mode"):
            assert fieldname not in material
        assert RunSpec(kind="allocate", design="c1355").spec_hash() == \
            TestGroupingSpecAxis.PINNED_HASHES["allocate"]

    def test_lifetime_knobs_are_key_material(self):
        base = RunSpec(**self.SPEC)
        assert RunSpec(**dict(self.SPEC, epochs=6)).spec_hash() \
            != base.spec_hash()
        assert RunSpec(**dict(self.SPEC, cadence=3)).spec_hash() \
            != base.spec_hash()
        assert RunSpec(**dict(self.SPEC, mode="spatial")).spec_hash() \
            != base.spec_hash()
        assert RunSpec(**dict(self.SPEC, drift={})).spec_hash() \
            != base.spec_hash()

    def test_pre_lifetime_json_still_parses(self):
        spec = RunSpec.from_json(
            '{"kind": "population", "design": "c1355", "num_dies": 10}')
        assert spec.epochs == 8
        assert spec.cadence == 1
        assert spec.drift == {}
        assert spec.mode == "model"

    def test_validation(self):
        with pytest.raises(SpecError, match="epochs"):
            RunSpec(kind="lifetime", epochs=0)
        with pytest.raises(SpecError, match="cadence"):
            RunSpec(kind="lifetime", cadence=0)
        with pytest.raises(SpecError, match="never re-calibrate"):
            RunSpec(kind="lifetime", epochs=2, cadence=5)
        with pytest.raises(SpecError, match="mode"):
            RunSpec(kind="lifetime", mode="bogus")

    def test_drift_model_materializes(self):
        drift = RunSpec(**self.SPEC).drift_model()
        assert drift.activity_sigma_v == 0.002
        assert drift.nbti.prefactor_v == 0.012
        assert RunSpec(kind="lifetime").drift_model() is None
        with pytest.raises(SpecError, match="bad drift overrides"):
            RunSpec(kind="lifetime",
                    drift={"not_a_knob": 1}).drift_model()
        with pytest.raises(SpecError, match="bad nbti overrides"):
            RunSpec(kind="lifetime",
                    drift={"nbti": {"not_a_knob": 1}}).drift_model()

    def test_executes_matches_run_lifetime_study_and_caches(self, cache,
                                                            flow):
        from repro.flow import LifetimeConfig, run_lifetime_study
        result = run(RunSpec(**self.SPEC), cache=cache)
        row = result.to_lifetime_row()
        direct = run_lifetime_study(flow, LifetimeConfig(
            num_dies=12, seed=5, epochs=3, cadence=1, beta_budget=0.02,
            drift=RunSpec(**self.SPEC).drift_model()))
        assert row.yield_curve == direct.yield_curve
        assert row.final_yield == direct.final_yield
        assert row.mean_leakage_uw == direct.mean_leakage_uw
        assert row.recalibrations == direct.recalibrations
        warm = run(RunSpec(**self.SPEC), cache=cache)
        assert warm.cache_hit
        assert warm.payload == result.payload

    def test_payload_codec_inverts(self, cache):
        from repro.api import (lifetime_row_from_payload,
                               lifetime_row_payload)
        result = run(RunSpec(**self.SPEC), cache=cache)
        row = result.to_lifetime_row()
        assert lifetime_row_from_payload(lifetime_row_payload(row)) == row
        assert isinstance(row.yield_curve, tuple)

    def test_decoder_guards_kind(self, cache):
        result = run(RunSpec(kind="allocate", design="c1355"),
                     cache=cache)
        with pytest.raises(SpecError, match="not a lifetime"):
            result.to_lifetime_row()


class TestPlacerSpecAxis:
    """RunSpec.placer: validated against the registry, hash-stable at
    the "bfs" default, and a real content-address axis otherwise."""

    def test_placer_is_hashed_field(self):
        from repro.api import HASHED_FIELDS
        assert "placer" in HASHED_FIELDS

    def test_default_placer_not_key_material(self):
        spec = RunSpec(kind="allocate", design="c1355")
        assert "placer" not in spec.cache_material()
        assert spec.to_dict()["placer"] == "bfs"

    def test_default_hashes_unchanged_by_placer_field(self):
        """The bfs default elides, so every pre-placer spec hash from
        TestGroupingSpecAxis.PINNED_HASHES must still hold."""
        for kind, expected in TestGroupingSpecAxis.PINNED_HASHES.items():
            assert RunSpec(kind=kind, design="c1355").spec_hash() == \
                expected, f"{kind} spec hash drifted with placer field"

    def test_non_default_placer_is_key_material(self):
        plain = RunSpec(kind="allocate", design="c1355")
        annealed = RunSpec(kind="allocate", design="c1355",
                           placer="anneal:quick")
        assert annealed.cache_material()["placer"] == "anneal:quick"
        assert annealed.spec_hash() != plain.spec_hash()
        assert RunSpec(kind="allocate", design="c1355",
                       placer="anneal:deep").spec_hash() != \
            annealed.spec_hash()

    def test_pre_placer_json_still_parses(self):
        spec = RunSpec.from_json(
            '{"kind": "allocate", "design": "c1355", "beta": 0.05}')
        assert spec.placer == "bfs"

    def test_placer_round_trips(self):
        spec = RunSpec(kind="allocate", design="c1355",
                       placer="anneal:default")
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_bad_placer_spec_rejected(self):
        with pytest.raises(SpecError, match="placer"):
            RunSpec(kind="allocate", design="c1355", placer="mystery")
        with pytest.raises(SpecError, match="placer"):
            RunSpec(kind="allocate", design="c1355", placer="")

    def test_alias_accepted(self):
        spec = RunSpec(kind="allocate", design="c1355", placer="anneal")
        assert spec.placer == "anneal"
        assert spec.cache_material()["placer"] == "anneal"

    def test_annealed_allocate_runs_and_caches(self, cache):
        spec = RunSpec(kind="allocate", design="c1355",
                       placer="anneal:quick")
        cold = run(spec, cache=cache)
        warm = run(spec, cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.payload == cold.payload
        # distinct content address from the bfs baseline run
        assert spec.spec_hash() != RunSpec(
            kind="allocate", design="c1355").spec_hash()
