"""Tests for FBB problem construction (Sec. 4.1 pre-processing)."""

import numpy as np
import pytest

from repro.core import build_problem
from repro.errors import AllocationError
from tests.core.conftest import CLIB


class TestConstruction:
    def test_dimensions(self, problem_small, placed_small):
        assert problem_small.num_rows == placed_small.num_rows
        assert problem_small.num_levels == 11
        assert problem_small.leakage_nw.shape == (
            problem_small.num_rows, 11)
        assert problem_small.recovery.shape == (
            problem_small.num_constraints, problem_small.num_rows)

    def test_constraints_grow_with_beta(self, problem_small,
                                        problem_small_10):
        """Table 1: the No.Constr column grows with beta."""
        assert (problem_small_10.num_constraints
                > problem_small.num_constraints)

    def test_requirements_positive(self, problem_small):
        assert (problem_small.required_ps > 0).all()

    def test_leakage_monotone_in_level(self, problem_small):
        diffs = np.diff(problem_small.leakage_nw, axis=1)
        assert (diffs > 0).all()

    def test_speedups_monotone(self, problem_small):
        assert problem_small.speedups[0] == 0.0
        assert (np.diff(problem_small.speedups) > 0).all()

    def test_recovery_consistent_with_paths(self, problem_small):
        """Row sums of D must equal degraded path gate delays."""
        derate = 1.0 + problem_small.beta
        for k, path in enumerate(problem_small.paths):
            row_sum = problem_small.recovery[k].sum()
            assert row_sum == pytest.approx(
                sum(path.gate_delays_ps) * derate, rel=1e-9)

    def test_gate_counts_match_paths(self, problem_small):
        for k, path in enumerate(problem_small.paths):
            assert problem_small.gate_counts[k].sum() == path.num_gates

    def test_negative_beta_rejected(self, placed_small):
        with pytest.raises(AllocationError):
            build_problem(placed_small, CLIB, beta=-0.1)

    def test_beta_zero_has_no_constraints(self, placed_small):
        problem = build_problem(placed_small, CLIB, beta=0.0)
        assert problem.num_constraints == 0
        assert problem.check_timing(np.zeros(problem.num_rows, dtype=int))


class TestRowBetaVector:
    """build_problem's spatial form: per-row slowdown vectors."""

    def test_constant_vector_reduces_to_scalar(self, placed_small,
                                               problem_small):
        vector = np.full(placed_small.num_rows, problem_small.beta)
        spatial = build_problem(placed_small, CLIB, vector)
        assert spatial.num_constraints == problem_small.num_constraints
        assert np.allclose(spatial.required_ps,
                           problem_small.required_ps)
        assert np.allclose(spatial.recovery.toarray(),
                           problem_small.recovery.toarray())
        assert not spatial.is_spatial
        assert not problem_small.is_spatial

    def test_scalar_problem_records_row_betas(self, problem_small):
        assert problem_small.row_betas.shape == (problem_small.num_rows,)
        assert (problem_small.row_betas
                == pytest.approx(problem_small.beta))

    def test_heterogeneous_rows_degrade_heterogeneously(
            self, placed_small):
        betas = np.zeros(placed_small.num_rows)
        betas[0] = 0.08
        spatial = build_problem(placed_small, CLIB, betas)
        assert spatial.is_spatial
        assert spatial.beta == pytest.approx(0.08)  # binding max
        dense = spatial.recovery.toarray()
        counts = spatial.gate_counts.toarray()
        # Rows beyond the slow one contribute their *nominal* delay
        # (beta 0), the slow row its degraded delay; check via the
        # aligned uniform problem at beta=0.08.
        uniform = build_problem(placed_small, CLIB, 0.08)
        for k, path in enumerate(spatial.paths):
            j = uniform.paths.index(path)
            hot = uniform.recovery.toarray()[j, 0]
            if counts[k, 0]:
                assert dense[k, 0] == pytest.approx(hot)
            cold = dense[k, 1:][counts[k, 1:] > 0]
            cold_uniform = uniform.recovery.toarray()[j, 1:][
                counts[k, 1:] > 0]
            assert np.allclose(cold * 1.08, cold_uniform)

    def test_spatial_constraint_set_is_a_subset(self, placed_small):
        betas = np.zeros(placed_small.num_rows)
        betas[0] = 0.08
        spatial = build_problem(placed_small, CLIB, betas)
        uniform = build_problem(placed_small, CLIB, 0.08)
        assert 0 < spatial.num_constraints <= uniform.num_constraints
        assert set(spatial.paths) <= set(uniform.paths)

    def test_wrong_shape_rejected(self, placed_small):
        with pytest.raises(AllocationError, match="shape"):
            build_problem(placed_small, CLIB,
                          np.zeros(placed_small.num_rows + 1))

    def test_negative_entry_rejected(self, placed_small):
        betas = np.zeros(placed_small.num_rows)
        betas[-1] = -0.01
        with pytest.raises(AllocationError, match="non-negative"):
            build_problem(placed_small, CLIB, betas)

    def test_zero_vector_has_no_constraints(self, placed_small):
        problem = build_problem(placed_small, CLIB,
                                np.zeros(placed_small.num_rows))
        assert problem.num_constraints == 0

    def test_allocators_consume_spatial_problems(self, placed_small):
        from repro.core import solve_heuristic, solve_single_bb
        betas = np.zeros(placed_small.num_rows)
        betas[:2] = 0.06
        spatial = build_problem(placed_small, CLIB, betas)
        baseline = solve_single_bb(spatial)
        clustered = solve_heuristic(spatial, 3)
        assert clustered.is_timing_feasible
        assert clustered.leakage_nw <= baseline.leakage_nw + 1e-9


class TestCheckTiming:
    def test_no_bias_fails_under_slowdown(self, problem_small):
        levels = np.zeros(problem_small.num_rows, dtype=int)
        assert not problem_small.check_timing(levels)

    def test_max_bias_passes(self, problem_small):
        levels = np.full(problem_small.num_rows,
                         problem_small.num_levels - 1)
        assert problem_small.check_timing(levels)

    def test_monotone_in_levels(self, problem_small):
        """Raising any row's voltage never breaks a passing solution."""
        from repro.core import pass_one
        jopt = pass_one(problem_small)
        levels = np.full(problem_small.num_rows, jopt)
        assert problem_small.check_timing(levels)
        for row in range(0, problem_small.num_rows,
                         max(1, problem_small.num_rows // 5)):
            raised = levels.copy()
            raised[row] = min(problem_small.num_levels - 1, jopt + 2)
            assert problem_small.check_timing(raised)

    def test_slacks_match_check(self, problem_small):
        from repro.core import pass_one
        jopt = pass_one(problem_small)
        levels = np.full(problem_small.num_rows, jopt)
        slacks = problem_small.path_slacks_ps(levels)
        assert slacks.min() >= -1e-6
        below = np.full(problem_small.num_rows, jopt - 1)
        assert problem_small.path_slacks_ps(below).min() < 0

    def test_wrong_shape_rejected(self, problem_small):
        with pytest.raises(AllocationError):
            problem_small.check_timing(np.zeros(3, dtype=int))

    def test_out_of_grid_level_rejected(self, problem_small):
        levels = np.zeros(problem_small.num_rows, dtype=int)
        levels[0] = 99
        with pytest.raises(AllocationError):
            problem_small.check_timing(levels)


class TestCostAndClusters:
    def test_total_leakage_matches_matrix(self, problem_small):
        levels = np.zeros(problem_small.num_rows, dtype=int)
        assert problem_small.total_leakage_nw(levels) == pytest.approx(
            problem_small.leakage_nw[:, 0].sum())

    def test_num_clusters_counts_distinct(self, problem_small):
        levels = np.zeros(problem_small.num_rows, dtype=int)
        assert problem_small.num_clusters(levels) == 1
        levels[0] = 3
        levels[1] = 7
        assert problem_small.num_clusters(levels) == 3

    def test_row_criticality_nonnegative(self, problem_small):
        from repro.core import pass_one
        jopt = pass_one(problem_small)
        levels = np.full(problem_small.num_rows, jopt)
        criticality = problem_small.row_criticality(levels)
        assert (criticality >= 0).all()
        assert criticality.max() > 0

    def test_rows_off_critical_paths_rank_lowest(self, problem_small):
        from repro.core import pass_one
        jopt = pass_one(problem_small)
        levels = np.full(problem_small.num_rows, jopt)
        criticality = problem_small.row_criticality(levels)
        touched = np.asarray(
            (problem_small.gate_counts.sum(axis=0) > 0)).ravel()
        if (~touched).any():
            assert criticality[~touched].max() <= criticality[touched].min()
