"""Property-based tests on the allocation problem's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import c1355_like
from repro.core import build_problem, pass_one, solve_heuristic
from tests.core.conftest import CLIB, make_placed


@pytest.fixture(scope="module")
def problem():
    placed = make_placed(c1355_like, data_width=10, check_bits=5)
    return build_problem(placed, CLIB, beta=0.07)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_raising_levels_never_decreases_slack(problem, data):
    """Feasibility is monotone: more bias == more recovery, everywhere."""
    levels = np.array(data.draw(st.lists(
        st.integers(0, problem.num_levels - 1),
        min_size=problem.num_rows, max_size=problem.num_rows)))
    row = data.draw(st.integers(0, problem.num_rows - 1))
    if levels[row] == problem.num_levels - 1:
        return
    raised = levels.copy()
    raised[row] += 1
    base_slack = problem.path_slacks_ps(levels)
    new_slack = problem.path_slacks_ps(raised)
    assert (new_slack >= base_slack - 1e-9).all()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_leakage_monotone_in_any_row(problem, data):
    levels = np.array(data.draw(st.lists(
        st.integers(0, problem.num_levels - 1),
        min_size=problem.num_rows, max_size=problem.num_rows)))
    row = data.draw(st.integers(0, problem.num_rows - 1))
    if levels[row] == problem.num_levels - 1:
        return
    raised = levels.copy()
    raised[row] += 1
    assert (problem.total_leakage_nw(raised)
            > problem.total_leakage_nw(levels))


@settings(max_examples=20, deadline=None)
@given(beta=st.floats(min_value=0.01, max_value=0.10))
def test_heuristic_always_feasible_and_bounded(beta):
    """Across betas: heuristic output is feasible, budgeted, and never
    leaks more than the single-BB uniform solution."""
    placed = make_placed(c1355_like, data_width=8, check_bits=4)
    problem = build_problem(placed, CLIB, beta=beta)
    if problem.num_constraints == 0:
        return
    jopt = pass_one(problem)
    solution = solve_heuristic(problem, 3)
    assert solution.is_timing_feasible
    assert solution.num_clusters <= 3
    uniform = problem.total_leakage_nw(
        np.full(problem.num_rows, jopt))
    assert solution.leakage_nw <= uniform + 1e-9


@settings(max_examples=15, deadline=None)
@given(beta_low=st.floats(min_value=0.01, max_value=0.05),
       delta=st.floats(min_value=0.005, max_value=0.05))
def test_single_bb_level_monotone_in_beta(beta_low, delta):
    placed = make_placed(c1355_like, data_width=8, check_bits=4)
    low = build_problem(placed, CLIB, beta=beta_low)
    high = build_problem(placed, CLIB, beta=beta_low + delta)
    assert pass_one(high) >= pass_one(low)
