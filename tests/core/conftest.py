"""Shared fixtures: a small placed benchmark and its FBB problems."""

import pytest

from repro.circuits import c1355_like, c3540_like
from repro.core import build_problem
from repro.placement import place_design
from repro.synth import map_netlist, size_for_load
from repro.tech import characterize_library, reduced_library

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


def make_placed(generator=c1355_like, **kwargs):
    mapped = map_netlist(generator(**kwargs), LIBRARY)
    size_for_load(mapped, LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="session")
def placed_small():
    return make_placed(c1355_like, data_width=10, check_bits=5)


@pytest.fixture(scope="session")
def placed_alu():
    return make_placed(c3540_like, width=8)


@pytest.fixture(scope="session")
def problem_small(placed_small):
    return build_problem(placed_small, CLIB, beta=0.05)


@pytest.fixture(scope="session")
def problem_small_10(placed_small):
    return build_problem(placed_small, CLIB, beta=0.10)


@pytest.fixture(scope="session")
def problem_alu(placed_alu):
    return build_problem(placed_alu, CLIB, beta=0.05)
