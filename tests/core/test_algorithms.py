"""Tests for PassOne, the two-pass heuristic, and the exact ILP."""

import numpy as np
import pytest

from repro.core import (build_problem, pass_one, pass_two, solve_heuristic,
                        solve_ilp, solve_single_bb, uniform_solution)
from repro.errors import AllocationError, InfeasibleError
from tests.core.conftest import CLIB


class TestPassOne:
    def test_jopt_is_feasible(self, problem_small):
        jopt = pass_one(problem_small)
        levels = np.full(problem_small.num_rows, jopt)
        assert problem_small.check_timing(levels)

    def test_jopt_is_minimal(self, problem_small):
        jopt = pass_one(problem_small)
        assert jopt > 0
        below = np.full(problem_small.num_rows, jopt - 1)
        assert not problem_small.check_timing(below)

    def test_higher_beta_needs_higher_jopt(self, problem_small,
                                           problem_small_10):
        assert pass_one(problem_small_10) > pass_one(problem_small)

    def test_infeasible_slowdown_raises(self, placed_small):
        problem = build_problem(placed_small, CLIB, beta=0.50)
        with pytest.raises(InfeasibleError):
            pass_one(problem)

    def test_single_bb_solution(self, problem_small):
        solution = solve_single_bb(problem_small)
        assert solution.num_clusters == 1
        assert solution.is_timing_feasible
        assert solution.method == "single-bb"


class TestHeuristic:
    @pytest.mark.parametrize("strategy", ["row-descent", "level-sweep"])
    def test_feasible_and_within_budget(self, problem_small, strategy):
        for budget in (1, 2, 3):
            solution = solve_heuristic(problem_small, budget,
                                       strategy=strategy)
            assert solution.is_timing_feasible
            assert solution.num_clusters <= budget

    def test_improves_on_single_bb(self, problem_small):
        baseline = solve_single_bb(problem_small)
        clustered = solve_heuristic(problem_small, 3)
        assert clustered.leakage_nw < baseline.leakage_nw

    def test_savings_monotone_in_clusters(self, problem_alu):
        baseline = solve_single_bb(problem_alu).leakage_nw
        previous = 0.0
        for budget in (2, 3, 4):
            solution = solve_heuristic(problem_alu, budget)
            savings = solution.savings_vs(baseline)
            assert savings >= previous - 1e-9
            previous = savings

    def test_row_descent_beats_level_sweep(self, problem_alu):
        descent = solve_heuristic(problem_alu, 3, strategy="row-descent")
        sweep = solve_heuristic(problem_alu, 3, strategy="level-sweep")
        assert descent.leakage_nw <= sweep.leakage_nw + 1e-9

    def test_linear_check_budget(self, problem_small):
        """The paper's O(P * N) bound on CheckTiming calls."""
        solution = solve_heuristic(problem_small, 3)
        bound = (problem_small.num_levels * problem_small.num_rows
                 * 2)  # budgets 2 and 3 are both swept
        assert solution.extras["check_timing_calls"] <= bound

    def test_deterministic(self, problem_small):
        first = solve_heuristic(problem_small, 3)
        second = solve_heuristic(problem_small, 3)
        assert first.levels == second.levels

    def test_unknown_strategy_rejected(self, problem_small):
        with pytest.raises(AllocationError):
            solve_heuristic(problem_small, 3, strategy="magic")

    def test_bad_budget_rejected(self, problem_small):
        with pytest.raises(AllocationError):
            solve_heuristic(problem_small, 0)

    def test_pass_two_noop_when_jopt_zero(self, placed_small):
        problem = build_problem(placed_small, CLIB, beta=0.0)
        levels, checks = pass_two(problem, 0, 3)
        assert (levels == 0).all()
        assert checks == 0


class TestIlp:
    @pytest.mark.parametrize("backend", ["highs", "bnb"])
    def test_feasible_and_within_budget(self, problem_small, backend):
        solution = solve_ilp(problem_small, 2, backend=backend)
        assert solution.is_timing_feasible
        assert solution.num_clusters <= 2
        assert solution.optimal

    def test_backends_agree(self, problem_small):
        highs = solve_ilp(problem_small, 2, backend="highs")
        bnb = solve_ilp(problem_small, 2, backend="bnb",
                        time_limit_s=300)
        assert highs.leakage_nw == pytest.approx(bnb.leakage_nw, rel=1e-6)

    def test_ilp_beats_or_matches_heuristic(self, problem_small):
        """The exact solution is a lower bound for the greedy one."""
        for budget in (2, 3):
            ilp = solve_ilp(problem_small, budget)
            heuristic = solve_heuristic(problem_small, budget)
            assert ilp.leakage_nw <= heuristic.leakage_nw + 1e-6

    def test_more_clusters_never_hurt(self, problem_small):
        two = solve_ilp(problem_small, 2)
        three = solve_ilp(problem_small, 3)
        assert three.leakage_nw <= two.leakage_nw + 1e-6

    def test_improves_on_single_bb(self, problem_small):
        baseline = solve_single_bb(problem_small)
        ilp = solve_ilp(problem_small, 2)
        assert ilp.leakage_nw < baseline.leakage_nw

    def test_unknown_backend_rejected(self, problem_small):
        with pytest.raises(AllocationError):
            solve_ilp(problem_small, 2, backend="cplex")

    def test_single_cluster_equals_best_uniform(self, problem_small):
        """With C=1 the ILP must land on the cheapest uniform level."""
        ilp = solve_ilp(problem_small, 1)
        jopt = pass_one(problem_small)
        uniform = uniform_solution(problem_small, jopt)
        assert ilp.leakage_nw == pytest.approx(uniform.leakage_nw, rel=1e-9)


class TestSolutionContainer:
    def test_savings_computation(self, problem_small):
        baseline = solve_single_bb(problem_small)
        clustered = solve_heuristic(problem_small, 3)
        savings = clustered.savings_vs(baseline.leakage_nw)
        assert 0 < savings < 100

    def test_bad_baseline_rejected(self, problem_small):
        solution = solve_single_bb(problem_small)
        with pytest.raises(AllocationError):
            solution.savings_vs(0.0)

    def test_clusters_map(self, problem_small):
        solution = solve_heuristic(problem_small, 3)
        clusters = solution.clusters()
        total_rows = sum(len(rows) for rows in clusters.values())
        assert total_rows == problem_small.num_rows
        assert list(clusters) == sorted(clusters)

    def test_wrong_length_rejected(self, problem_small):
        from repro.core import BiasSolution
        with pytest.raises(AllocationError):
            BiasSolution(problem=problem_small, levels=(0,), method="x")

    def test_describe_mentions_design(self, problem_small):
        solution = solve_heuristic(problem_small, 3)
        assert problem_small.design_name in solution.describe()

    def test_vbs_of_row(self, problem_small):
        solution = solve_single_bb(problem_small)
        jopt = solution.extras["jopt"]
        assert solution.vbs_of_row(0) == pytest.approx(
            problem_small.vbs_levels[jopt])
