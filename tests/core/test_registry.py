"""Tests for the solver registry: dispatch, aliases, docstring policy.

``make lint`` and CI run this module; the docstring-enforcement tests
are what "fail the build on registry entries without docstrings" means
in practice.
"""

from pathlib import Path

import pytest

from repro.circuits import c1355_like
from repro.core import (build_problem, registry, solve, solve_heuristic,
                        solve_single_bb)
from repro.core.registry import SolverRegistry
from repro.errors import RegistryError
from repro.placement import place_design
from repro.synth import map_netlist, size_for_load
from repro.tech import characterize_library, reduced_library

EXPECTED_ENTRIES = ("heuristic:level-sweep", "heuristic:row-descent",
                    "ilp:branch_bound", "ilp:highs", "ilp:simplex",
                    "single_bb")
EXPECTED_ALIASES = ("heuristic", "ilp", "ilp:bnb")

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


@pytest.fixture(scope="module")
def problem_tiny():
    mapped = map_netlist(c1355_like(data_width=4, check_bits=2), LIBRARY)
    size_for_load(mapped, LIBRARY)
    placed = place_design(mapped, LIBRARY)
    return build_problem(placed, CLIB, beta=0.05)


class TestRegistryContents:
    def test_expected_entries_registered(self):
        assert registry.names() == EXPECTED_ENTRIES

    def test_aliases_resolve_to_entries(self):
        for alias in EXPECTED_ALIASES:
            assert registry.get(alias).name in EXPECTED_ENTRIES
        assert registry.get("ilp").name == "ilp:highs"
        assert registry.get("heuristic").name == "heuristic:row-descent"
        assert registry.get("ilp:bnb").name == "ilp:branch_bound"

    def test_names_can_include_aliases(self):
        with_aliases = registry.names(include_aliases=True)
        assert set(EXPECTED_ALIASES) <= set(with_aliases)

    def test_every_entry_has_docstring(self):
        """The build-breaking policy: no undocumented solver entries.
        Statically enforced by the ``registry-docstring`` checker of
        :mod:`repro.lint` (this wrapper runs it over the solver
        package); the summary line stays a runtime assertion."""
        from repro.lint import lint_paths
        src = Path(__file__).resolve().parents[2] / "src"
        findings = lint_paths([src / "repro" / "core"],
                              rules=["registry-docstring"], root=src)
        assert not findings, "\n".join(f.format() for f in findings)
        for entry in registry.entries():
            doc = (entry.func.__doc__ or "").strip()
            assert doc, f"registry entry {entry.name!r} has no docstring"
            assert entry.summary == doc.splitlines()[0].strip()

    def test_unknown_method_lists_alternatives(self, problem_tiny):
        with pytest.raises(RegistryError, match="heuristic:row-descent"):
            solve(problem_tiny, "annealing")


class TestRegistryPolicy:
    def test_undocumented_entry_rejected(self):
        fresh = SolverRegistry()

        def undocumented(problem, clusters):
            pass

        with pytest.raises(RegistryError, match="docstring"):
            fresh.register("mystery", undocumented)

    def test_duplicate_registration_rejected(self):
        fresh = SolverRegistry()

        @fresh.register("one")
        def first(problem, clusters):
            """A documented solver."""

        with pytest.raises(RegistryError, match="already registered"):
            fresh.register("one", first)

    def test_alias_to_unknown_target_rejected(self):
        fresh = SolverRegistry()
        with pytest.raises(RegistryError, match="not a registered"):
            fresh.alias("fast", "nonexistent")

    def test_alias_shadowing_entry_rejected(self):
        fresh = SolverRegistry()

        @fresh.register("one")
        def first(problem, clusters):
            """A documented solver."""

        with pytest.raises(RegistryError, match="already registered"):
            fresh.alias("one", "one")


class TestRegistryDispatch:
    def test_heuristic_matches_direct_call(self, problem_tiny):
        via_registry = solve(problem_tiny, "heuristic:row-descent", 3)
        direct = solve_heuristic(problem_tiny, 3, strategy="row-descent")
        assert via_registry.levels == direct.levels
        assert via_registry.leakage_nw == direct.leakage_nw

    def test_single_bb_matches_direct_call(self, problem_tiny):
        via_registry = solve(problem_tiny, "single_bb")
        direct = solve_single_bb(problem_tiny)
        assert via_registry.levels == direct.levels

    def test_single_bb_ignores_cluster_budget(self, problem_tiny):
        assert (solve(problem_tiny, "single_bb", clusters=5).levels
                == solve(problem_tiny, "single_bb", clusters=1).levels)

    def test_ilp_backends_agree_on_tiny_problem(self, problem_tiny):
        highs = solve(problem_tiny, "ilp:highs", 2)
        simplex = solve(problem_tiny, "ilp:simplex", 2, time_limit_s=120)
        assert simplex.method == "ilp-simplex"
        assert highs.leakage_nw == pytest.approx(simplex.leakage_nw,
                                                 rel=1e-6)

    def test_heuristic_ranking_opt_forwarded(self, problem_tiny):
        gate_count = solve(problem_tiny, "heuristic", 3,
                           ranking="gate-count")
        assert "gate-count" in gate_count.method
