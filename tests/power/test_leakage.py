"""Tests for leakage accounting."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.errors import AllocationError
from repro.placement import place_design
from repro.power import (design_leakage_nw, gate_leakage_nw, leakage_matrix,
                         row_leakage_nw, uniform_leakage_nw)
from repro.synth import map_netlist
from repro.tech import characterize_library, reduced_library

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=8, check_bits=4), LIBRARY)
    return place_design(mapped, LIBRARY)


class TestMatrix:
    def test_shape(self, placed):
        matrix = leakage_matrix(placed, CLIB)
        assert matrix.shape == (placed.num_rows, CLIB.num_levels)

    def test_matches_row_sums(self, placed):
        matrix = leakage_matrix(placed, CLIB)
        for row in range(placed.num_rows):
            for level in (0, 5, 10):
                assert matrix[row, level] == pytest.approx(
                    row_leakage_nw(placed, CLIB, row, level), rel=1e-9)

    def test_monotone_in_level(self, placed):
        matrix = leakage_matrix(placed, CLIB)
        assert (np.diff(matrix, axis=1) > 0).all()

    def test_all_rows_leak(self, placed):
        matrix = leakage_matrix(placed, CLIB)
        assert (matrix[:, 0] > 0).all()


class TestDesignRollups:
    def test_uniform_equals_sum(self, placed):
        matrix = leakage_matrix(placed, CLIB)
        assert uniform_leakage_nw(placed, CLIB, 3) == pytest.approx(
            matrix[:, 3].sum(), rel=1e-9)

    def test_assignment_by_mapping(self, placed):
        levels = {row: row % CLIB.num_levels
                  for row in range(placed.num_rows)}
        by_map = design_leakage_nw(placed, CLIB, levels)
        by_list = design_leakage_nw(
            placed, CLIB, [levels[r] for r in range(placed.num_rows)])
        assert by_map == pytest.approx(by_list)

    def test_wrong_length_rejected(self, placed):
        with pytest.raises(AllocationError):
            design_leakage_nw(placed, CLIB, [0, 1])

    def test_gate_leakage_positive(self, placed):
        name = next(iter(placed.netlist.gates))
        assert gate_leakage_nw(placed.netlist, CLIB, name, 0) > 0
        assert (gate_leakage_nw(placed.netlist, CLIB, name, 10)
                > gate_leakage_nw(placed.netlist, CLIB, name, 0))
