"""Tests for the closed-loop lifetime engine (repro/tuning/lifetime.py)
and the ``scales_out`` contract of the batched calibration engine it
builds on."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.circuits.industrial import multiblock_soc
from repro.errors import TuningError
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import characterize_library, reduced_library
from repro.tuning import (TuningController, calibrate_dies_batched,
                          run_lifetime)
from repro.variation import (DriftModel, MonteCarloResult, NbtiModel,
                             sample_dies)

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)

#: mild enough that re-calibration can actually recover dies instead of
#: saturating the bias rails (the regime the experiment reports on).
MILD = DriftModel(nbti=NbtiModel(prefactor_v=0.012),
                  activity_sigma_v=0.002)


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=8, check_bits=4), LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="module")
def population(placed):
    return sample_dies(placed, 25, seed=0)


def _controller(placed) -> TuningController:
    return TuningController(placed, CLIB)


class TestLifetimeLoop:
    def test_summary_bookkeeping(self, placed, population):
        summary = run_lifetime(_controller(placed), population,
                               MILD, epochs=4, cadence=2,
                               beta_budget=0.02, seed=1)
        assert summary.design == placed.netlist.name
        assert summary.mode == "model"
        assert summary.num_regions is None
        assert summary.num_dies == 25
        assert len(summary.outcomes) == 4
        assert [o.recalibrated for o in summary.outcomes] \
            == [True, False, True, False]
        assert summary.recalibrations == 2
        assert [o.age_years for o in summary.outcomes] \
            == [MILD.epoch_years * (e + 1) for e in range(4)]
        curve = summary.yield_curve()
        assert curve == tuple(o.yield_fraction for o in summary.outcomes)
        assert summary.final_yield == curve[-1]
        assert summary.min_yield == min(curve)
        assert summary.mean_yield == pytest.approx(
            sum(curve) / len(curve))
        for outcome in summary.outcomes:
            assert outcome.meets + (outcome.total - outcome.meets) \
                == summary.num_dies
            assert outcome.yield_fraction == pytest.approx(
                outcome.meets / outcome.total)

    def test_deterministic(self, placed, population):
        first = run_lifetime(_controller(placed), population, MILD,
                             epochs=3, cadence=1, beta_budget=0.02,
                             seed=2)
        second = run_lifetime(_controller(placed), population, MILD,
                              epochs=3, cadence=1, beta_budget=0.02,
                              seed=2)
        assert first.outcomes == second.outcomes  # floats and all

    def test_drift_seed_changes_trajectory(self, placed, population):
        base = run_lifetime(_controller(placed), population, MILD,
                            epochs=3, cadence=1, seed=0)
        other = run_lifetime(_controller(placed), population, MILD,
                             epochs=3, cadence=1, seed=9)
        assert [o.mean_row_beta for o in base.outcomes] \
            != [o.mean_row_beta for o in other.outcomes]

    def test_frequent_recalibration_does_not_lose_yield(self, placed,
                                                        population):
        """Re-tuning every epoch must end no worse than tuning once at
        the start of life and coasting."""
        every = run_lifetime(_controller(placed), population, MILD,
                             epochs=4, cadence=1, beta_budget=0.02,
                             seed=1)
        once = run_lifetime(_controller(placed), population, MILD,
                            epochs=4, cadence=4, beta_budget=0.02,
                            seed=1)
        assert every.recalibrations == 4
        assert once.recalibrations == 1
        assert every.final_yield >= once.final_yield

    def test_larger_budget_never_hurts_yield(self, placed, population):
        tight = run_lifetime(_controller(placed), population, MILD,
                             epochs=3, cadence=1, beta_budget=0.0,
                             seed=1)
        loose = run_lifetime(_controller(placed), population, MILD,
                             epochs=3, cadence=1, beta_budget=0.05,
                             seed=1)
        for epoch in range(3):
            assert loose.yield_curve()[epoch] \
                >= tight.yield_curve()[epoch]

    def test_spatial_mode_runs_and_reports_regions(self, placed,
                                                   population):
        summary = run_lifetime(_controller(placed), population, MILD,
                               epochs=2, cadence=1, beta_budget=0.02,
                               mode="spatial", num_regions=4, seed=1)
        assert summary.mode == "spatial"
        assert summary.num_regions == min(4, placed.num_rows)
        assert len(summary.outcomes) == 2

    def test_empty_population_short_circuits(self, placed):
        empty = MonteCarloResult(samples=(), nominal_delay_ps=100.0)
        summary = run_lifetime(_controller(placed), empty, MILD,
                               epochs=3, cadence=1)
        assert summary.num_dies == 0
        assert summary.yield_curve() == (1.0, 1.0, 1.0)
        assert summary.min_yield == 1.0
        assert all(o.mean_leakage_nw == 0.0 for o in summary.outcomes)

    def test_all_dies_dead_epoch_is_well_formed(self, placed,
                                                population):
        """A drift field beyond FBB recovery range must produce a clean
        zero-yield epoch, not a division error or a crash."""
        hopeless = DriftModel(nbti=NbtiModel(prefactor_v=0.5),
                              activity_sigma_v=0.0)
        summary = run_lifetime(_controller(placed), population,
                               hopeless, epochs=2, cadence=1, seed=0)
        assert summary.min_yield == 0.0
        dead = summary.outcomes[-1]
        assert dead.meets == 0
        assert dead.yield_fraction == 0.0
        assert dead.total == summary.num_dies

    def test_validation(self, placed, population):
        controller = _controller(placed)
        with pytest.raises(TuningError, match="epochs"):
            run_lifetime(controller, population, MILD, epochs=0)
        with pytest.raises(TuningError, match="cadence"):
            run_lifetime(controller, population, MILD, epochs=2,
                         cadence=0)
        with pytest.raises(TuningError, match="exceeds"):
            run_lifetime(controller, population, MILD, epochs=2,
                         cadence=3)
        with pytest.raises(TuningError, match="budget"):
            run_lifetime(controller, population, MILD, epochs=2,
                         beta_budget=-0.1)
        with pytest.raises(TuningError, match="mode"):
            run_lifetime(controller, population, MILD, epochs=2,
                         mode="bogus")
        with pytest.raises(TuningError, match="region"):
            run_lifetime(controller, population, MILD, epochs=2,
                         mode="spatial", num_regions=0)

    def test_missing_scale_matrix_rejected(self, placed, population):
        stripped = MonteCarloResult(
            samples=population.samples,
            nominal_delay_ps=population.nominal_delay_ps,
            gate_names=population.gate_names)
        with pytest.raises(TuningError, match="scale matrix"):
            run_lifetime(_controller(placed), stripped, MILD, epochs=2)

    def test_foreign_population_rejected(self, placed):
        soc = place_design(
            map_netlist(multiblock_soc("soc_small", num_blocks=2,
                                       block_gates=220), LIBRARY),
            LIBRARY)
        foreign = sample_dies(soc, 5, seed=0)
        with pytest.raises(TuningError, match="gate order"):
            run_lifetime(_controller(placed), foreign, MILD, epochs=2)


class TestScalesOut:
    """calibrate_dies_batched's scales_out out-param: the lifetime loop
    needs each die's applied bias row, the records must not change."""

    def test_records_unchanged_and_rows_reported(self, placed,
                                                 population):
        controller = _controller(placed)
        dies = [(die.index, float(beta))
                for die, beta in zip(population.samples,
                                     population.betas)]
        unbiased = controller.clib_leakage_unbiased()
        plain = calibrate_dies_batched(controller, dies, 0.0, unbiased)
        scales: dict[int, np.ndarray | None] = {}
        with_out = calibrate_dies_batched(controller, dies, 0.0,
                                          unbiased, scales_out=scales)
        assert with_out == plain  # out-param must not perturb records
        assert sorted(scales) == [index for index, _ in dies]
        num_gates = len(population.gate_names)
        for record in with_out:
            row = scales[record.index]
            if record.status == "recovered" and record.iterations >= 1:
                assert row is not None
                assert row.shape == (num_gates,)
                assert (row <= 1.0).all()  # FBB only speeds gates up
            elif record.status in ("ok-unbiased", "yield-loss"):
                assert row is None

    def test_biased_rows_exist_for_tuned_population(self, placed,
                                                    population):
        controller = _controller(placed)
        dies = [(die.index, float(beta))
                for die, beta in zip(population.samples,
                                     population.betas)]
        scales: dict[int, np.ndarray | None] = {}
        calibrate_dies_batched(controller, dies, 0.0,
                               controller.clib_leakage_unbiased(),
                               scales_out=scales)
        assert any(row is not None for row in scales.values())
