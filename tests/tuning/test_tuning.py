"""Tests for sensors, bias generator and the closed tuning loop."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.errors import TuningError
from repro.placement import place_design
from repro.sta import BatchedTimingAnalyzer, TimingAnalyzer, extract_paths
from repro.synth import map_netlist
from repro.tech import Technology, characterize_library, reduced_library
from repro.tuning import (BodyBiasGenerator, InSituMonitor,
                          PathReplicaSensor, PopulationMonitor,
                          TuningController, tune_population)
from repro.variation import sample_dies

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=10, check_bits=5), LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="module")
def replica(placed):
    analyzer = TimingAnalyzer.for_placed(placed)
    paths = extract_paths(analyzer)
    # tiny margin: the replica sits exactly at Tcrit on a nominal die
    return PathReplicaSensor(replica=paths[0],
                             tcrit_ps=paths[0].delay_ps * 1.001)


class TestPathReplica:
    def test_no_alarm_at_nominal(self, replica):
        assert not replica.alarm(0.0)

    def test_alarm_on_slow_die(self, replica):
        assert replica.alarm(0.10)

    def test_bias_clears_alarm(self, replica):
        slow = 0.08
        bias_scale = CLIB.delay_scales[10]  # max forward bias
        assert replica.alarm(slow)
        assert not replica.alarm(slow, bias_scale)

    def test_estimate_inverts_measurement(self, replica):
        measured = replica.measured_delay_ps(0.07)
        assert replica.estimate_slowdown(measured) == pytest.approx(0.07)

    def test_guard_band_validation(self, replica):
        with pytest.raises(TuningError):
            PathReplicaSensor(replica.replica, tcrit_ps=-1.0)
        with pytest.raises(TuningError):
            PathReplicaSensor(replica.replica, tcrit_ps=100.0,
                              guard_band=1.5)


class TestInSituMonitor:
    def test_counts_alarms(self, placed):
        analyzer = TimingAnalyzer.for_placed(placed)
        monitor = InSituMonitor(analyzer, analyzer.critical_delay_ps())
        assert monitor.check(0.05)
        assert monitor.alarms_raised == 1
        assert not monitor.check(0.0)
        assert monitor.alarms_raised == 1

    def test_failing_endpoints_nonempty_on_alarm(self, placed):
        analyzer = TimingAnalyzer.for_placed(placed)
        monitor = InSituMonitor(analyzer, analyzer.critical_delay_ps())
        assert monitor.failing_endpoints(0.05)


class TestPopulationMonitor:
    def test_matches_scalar_monitor(self, placed):
        analyzer = TimingAnalyzer.for_placed(placed)
        batched = BatchedTimingAnalyzer(analyzer)
        tcrit = analyzer.critical_delay_ps()
        scalar_monitor = InSituMonitor(analyzer, tcrit)
        monitor = PopulationMonitor(batched, tcrit)
        betas = np.array([0.0, 0.02, 0.08])
        alarms = monitor.check_population(betas)
        expected = [scalar_monitor.check(float(b)) for b in betas]
        assert alarms.tolist() == expected
        assert monitor.alarms_raised == sum(expected)

    def test_bias_scales_clear_alarms(self, placed):
        batched = BatchedTimingAnalyzer.for_placed(placed)
        tcrit = batched.analyzer.critical_delay_ps()
        monitor = PopulationMonitor(batched, tcrit * 1.0001)
        betas = np.full(4, 0.05)
        assert monitor.check_population(betas).all()
        strong_bias = np.full((4, batched.num_gates),
                              CLIB.delay_scales[10])
        assert not monitor.check_population(betas, strong_bias).any()

    def test_measured_betas_round_trip(self, placed):
        batched = BatchedTimingAnalyzer.for_placed(placed)
        monitor = PopulationMonitor(
            batched, batched.analyzer.critical_delay_ps())
        population = sample_dies(placed, 10, seed=8)
        measured = monitor.measured_betas(population.scale_matrix,
                                          population.nominal_delay_ps)
        assert np.array_equal(measured, population.betas)

    def test_validation(self, placed):
        batched = BatchedTimingAnalyzer.for_placed(placed)
        with pytest.raises(TuningError):
            PopulationMonitor(batched, -1.0)
        monitor = PopulationMonitor(batched, 100.0)
        with pytest.raises(TuningError):
            monitor.check_population(np.array([-0.1]))
        with pytest.raises(TuningError):
            monitor.check_population(np.zeros((2, 2)))


class TestPopulationTuning:
    def test_yield_recovers(self, placed):
        population = sample_dies(placed, 15, seed=2, store_scales=False)
        controller = TuningController(placed, CLIB)
        summary = tune_population(controller, population)
        assert summary.num_dies == 15
        assert summary.yield_before == population.timing_yield()
        assert summary.yield_after >= summary.yield_before
        assert summary.count("ok-unbiased") + summary.recovered \
            + summary.lost == 15
        statuses = {record.status for record in summary.records}
        assert statuses <= {"ok-unbiased", "recovered", "not-converged",
                            "yield-loss"}

    def test_recovered_dies_pay_leakage(self, placed):
        population = sample_dies(placed, 15, seed=2, store_scales=False)
        controller = TuningController(placed, CLIB)
        summary = controller.calibrate_population(population)
        if summary.recovered:
            assert summary.mean_recovered_leakage_nw() \
                > summary.unbiased_leakage_nw

    def test_unknown_status_rejected(self, placed):
        population = sample_dies(placed, 3, seed=2, store_scales=False)
        controller = TuningController(placed, CLIB)
        summary = tune_population(controller, population)
        with pytest.raises(TuningError):
            summary.count("vaporised")

    def test_beta_budget_relaxes_target(self, placed):
        """With a budget, dies are tuned to the budgeted Dcrit — never
        more dies lost than when recovering all the way to nominal."""
        population = sample_dies(placed, 15, seed=2, store_scales=False)
        controller = TuningController(placed, CLIB)
        strict = tune_population(controller, population)
        relaxed = tune_population(controller, population,
                                  beta_budget=0.04)
        assert relaxed.lost <= strict.lost
        assert relaxed.yield_after >= strict.yield_after
        assert relaxed.yield_before == population.timing_yield(0.04)
        with pytest.raises(TuningError):
            tune_population(controller, population, beta_budget=-0.1)


class TestGenerator:
    def test_quantizes_up(self):
        generator = BodyBiasGenerator(Technology())
        assert generator.program("vbs1", 0.12) == pytest.approx(0.15)

    def test_rail_budget_enforced(self):
        generator = BodyBiasGenerator(Technology())
        generator.program("vbs1", 0.1)
        generator.program("vbs2", 0.2)
        with pytest.raises(TuningError):
            generator.program("vbs3", 0.3)

    def test_reprogramming_existing_rail_allowed(self):
        generator = BodyBiasGenerator(Technology())
        generator.program("vbs1", 0.1)
        generator.program("vbs2", 0.2)
        assert generator.program("vbs1", 0.3) == pytest.approx(0.3)

    def test_out_of_range_rejected(self):
        generator = BodyBiasGenerator(Technology())
        with pytest.raises(TuningError):
            generator.program("vbs1", 0.7)

    def test_release_frees_rail(self):
        generator = BodyBiasGenerator(Technology())
        generator.program("vbs1", 0.1)
        generator.release("vbs1")
        generator.program("vbsX", 0.2)
        with pytest.raises(TuningError):
            generator.release("vbs1")

    def test_program_solution(self):
        generator = BodyBiasGenerator(Technology())
        mapping = generator.program_solution([0.0, 0.1, 0.1, 0.3])
        assert set(mapping) == {0.1, 0.3}
        assert generator.rail_voltages == {
            "vbs1": 0.1, "vbs2": pytest.approx(0.3)}

    def test_settle_latency(self):
        generator = BodyBiasGenerator(Technology(), settle_time_us=4.0)
        generator.program("vbs1", 0.1)
        generator.program("vbs1", 0.2)
        assert generator.settle_latency_us() == pytest.approx(8.0)


class TestController:
    def test_fast_die_untouched(self, placed):
        controller = TuningController(placed, CLIB)
        outcome = controller.calibrate(0.0)
        assert outcome.converged
        assert outcome.iterations == 0
        assert outcome.solution is None

    def test_slow_die_recovered(self, placed):
        # max_clusters=2 keeps the allocation inside the generator's
        # two-rail budget for any legal placement of the fixture.
        controller = TuningController(placed, CLIB, max_clusters=2)
        outcome = controller.calibrate(0.06)
        assert outcome.converged
        assert outcome.solution is not None
        assert outcome.solution.num_clusters <= 3
        # verify: no alarm at the final setting
        scales = controller._gate_scales(outcome.solution)
        assert not controller.monitor.check(0.06, scales)

    def test_underestimate_forces_iteration(self, placed):
        controller = TuningController(placed, CLIB, max_clusters=2)
        outcome = controller.calibrate(0.06, initial_estimate=0.01)
        assert outcome.converged
        assert outcome.iterations > 1

    def test_unrecoverable_die_raises(self, placed):
        controller = TuningController(placed, CLIB)
        with pytest.raises(TuningError):
            controller.calibrate(0.40)

    def test_negative_beta_rejected(self, placed):
        controller = TuningController(placed, CLIB)
        with pytest.raises(TuningError):
            controller.calibrate(-0.1)

    def test_history_records_iterations(self, placed):
        controller = TuningController(placed, CLIB, max_clusters=2)
        outcome = controller.calibrate(0.05)
        assert outcome.history
        assert any("iter 1" in line for line in outcome.history)
