"""Tests for sensors, bias generator and the closed tuning loop."""

import pytest

from repro.circuits import c1355_like
from repro.errors import TuningError
from repro.placement import place_design
from repro.sta import TimingAnalyzer, extract_paths
from repro.synth import map_netlist
from repro.tech import Technology, characterize_library, reduced_library
from repro.tuning import (BodyBiasGenerator, InSituMonitor,
                          PathReplicaSensor, TuningController)

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=10, check_bits=5), LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="module")
def replica(placed):
    analyzer = TimingAnalyzer.for_placed(placed)
    paths = extract_paths(analyzer)
    # tiny margin: the replica sits exactly at Tcrit on a nominal die
    return PathReplicaSensor(replica=paths[0],
                             tcrit_ps=paths[0].delay_ps * 1.001)


class TestPathReplica:
    def test_no_alarm_at_nominal(self, replica):
        assert not replica.alarm(0.0)

    def test_alarm_on_slow_die(self, replica):
        assert replica.alarm(0.10)

    def test_bias_clears_alarm(self, replica):
        slow = 0.08
        bias_scale = CLIB.delay_scales[10]  # max forward bias
        assert replica.alarm(slow)
        assert not replica.alarm(slow, bias_scale)

    def test_estimate_inverts_measurement(self, replica):
        measured = replica.measured_delay_ps(0.07)
        assert replica.estimate_slowdown(measured) == pytest.approx(0.07)

    def test_guard_band_validation(self, replica):
        with pytest.raises(TuningError):
            PathReplicaSensor(replica.replica, tcrit_ps=-1.0)
        with pytest.raises(TuningError):
            PathReplicaSensor(replica.replica, tcrit_ps=100.0,
                              guard_band=1.5)


class TestInSituMonitor:
    def test_counts_alarms(self, placed):
        analyzer = TimingAnalyzer.for_placed(placed)
        monitor = InSituMonitor(analyzer, analyzer.critical_delay_ps())
        assert monitor.check(0.05)
        assert monitor.alarms_raised == 1
        assert not monitor.check(0.0)
        assert monitor.alarms_raised == 1

    def test_failing_endpoints_nonempty_on_alarm(self, placed):
        analyzer = TimingAnalyzer.for_placed(placed)
        monitor = InSituMonitor(analyzer, analyzer.critical_delay_ps())
        assert monitor.failing_endpoints(0.05)


class TestGenerator:
    def test_quantizes_up(self):
        generator = BodyBiasGenerator(Technology())
        assert generator.program("vbs1", 0.12) == pytest.approx(0.15)

    def test_rail_budget_enforced(self):
        generator = BodyBiasGenerator(Technology())
        generator.program("vbs1", 0.1)
        generator.program("vbs2", 0.2)
        with pytest.raises(TuningError):
            generator.program("vbs3", 0.3)

    def test_reprogramming_existing_rail_allowed(self):
        generator = BodyBiasGenerator(Technology())
        generator.program("vbs1", 0.1)
        generator.program("vbs2", 0.2)
        assert generator.program("vbs1", 0.3) == pytest.approx(0.3)

    def test_out_of_range_rejected(self):
        generator = BodyBiasGenerator(Technology())
        with pytest.raises(TuningError):
            generator.program("vbs1", 0.7)

    def test_release_frees_rail(self):
        generator = BodyBiasGenerator(Technology())
        generator.program("vbs1", 0.1)
        generator.release("vbs1")
        generator.program("vbsX", 0.2)
        with pytest.raises(TuningError):
            generator.release("vbs1")

    def test_program_solution(self):
        generator = BodyBiasGenerator(Technology())
        mapping = generator.program_solution([0.0, 0.1, 0.1, 0.3])
        assert set(mapping) == {0.1, 0.3}
        assert generator.rail_voltages == {
            "vbs1": 0.1, "vbs2": pytest.approx(0.3)}

    def test_settle_latency(self):
        generator = BodyBiasGenerator(Technology(), settle_time_us=4.0)
        generator.program("vbs1", 0.1)
        generator.program("vbs1", 0.2)
        assert generator.settle_latency_us() == pytest.approx(8.0)


class TestController:
    def test_fast_die_untouched(self, placed):
        controller = TuningController(placed, CLIB)
        outcome = controller.calibrate(0.0)
        assert outcome.converged
        assert outcome.iterations == 0
        assert outcome.solution is None

    def test_slow_die_recovered(self, placed):
        controller = TuningController(placed, CLIB)
        outcome = controller.calibrate(0.06)
        assert outcome.converged
        assert outcome.solution is not None
        assert outcome.solution.num_clusters <= 3
        # verify: no alarm at the final setting
        scales = controller._gate_scales(outcome.solution)
        assert not controller.monitor.check(0.06, scales)

    def test_underestimate_forces_iteration(self, placed):
        controller = TuningController(placed, CLIB)
        outcome = controller.calibrate(0.06, initial_estimate=0.01)
        assert outcome.converged
        assert outcome.iterations > 1

    def test_unrecoverable_die_raises(self, placed):
        controller = TuningController(placed, CLIB)
        with pytest.raises(TuningError):
            controller.calibrate(0.40)

    def test_negative_beta_rejected(self, placed):
        controller = TuningController(placed, CLIB)
        with pytest.raises(TuningError):
            controller.calibrate(-0.1)

    def test_history_records_iterations(self, placed):
        controller = TuningController(placed, CLIB)
        outcome = controller.calibrate(0.05)
        assert outcome.history
        assert any("iter 1" in line for line in outcome.history)
