"""Tests for the spatial compensation engine (paper Sec. 3.1 sensing
closed over the correlated intra-die field): SpatialSensorGrid,
TuningController.calibrate_spatial, and tune_population's spatial mode.
"""

import numpy as np
import pytest

from repro.circuits import multiblock_soc
from repro.errors import TuningError
from repro.flow import ArtifactCache, SpatialConfig, implement, run_spatial
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import characterize_library, reduced_library
from repro.tuning import (SpatialSensorGrid, TuningController,
                          tune_population)
from repro.variation import ProcessModel, sample_dies

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)

#: process model with strong, block-scale spatial structure
MODEL = ProcessModel(sigma_inter_v=0.004, sigma_intra_v=0.03,
                     intra_independent_fraction=0.1,
                     correlation_length_fraction=0.25)


@pytest.fixture(scope="module")
def placed():
    soc = multiblock_soc("soc_test", num_blocks=4, block_gates=130,
                         seed=3)
    return place_design(map_netlist(soc, LIBRARY), LIBRARY)


@pytest.fixture(scope="module")
def controller(placed):
    return TuningController(placed, CLIB, max_clusters=3,
                            sense_guard=0.01)


@pytest.fixture(scope="module")
def population(placed):
    return sample_dies(placed, 30, model=MODEL, seed=9,
                       store_scales=False)


class TestSpatialSensorGrid:
    def test_bands_partition_rows(self, controller, placed):
        grid = controller.sensor_grid(4)
        covered = []
        for lo, hi in grid.row_bands:
            covered.extend(range(lo, hi))
        assert covered == list(range(placed.num_rows))
        assert grid.num_regions == 4

    def test_region_count_clamped_to_rows(self, controller, placed):
        grid = controller.sensor_grid(placed.num_rows + 50)
        assert grid.num_regions == placed.num_rows

    def test_rejects_zero_regions(self, placed):
        with pytest.raises(TuningError, match="region"):
            SpatialSensorGrid(placed, 0, {}, ())

    def test_uniform_field_sensed_uniformly(self, controller):
        grid = controller.sensor_grid(4)
        field = {name: 1.07 for name in grid.gate_names}
        estimates = grid.estimate_region_betas(field)
        assert estimates == pytest.approx(np.full(4, 0.07))

    def test_localized_slowdown_sensed_locally(self, controller, placed):
        grid = controller.sensor_grid(4)
        lo, hi = grid.row_bands[2]
        field = {name: (1.10 if lo <= placed.row_of(name) < hi else 1.0)
                 for name in grid.gate_names}
        estimates = grid.estimate_region_betas(field)
        assert estimates[2] == pytest.approx(0.10)
        others = [estimates[region] for region in (0, 1, 3)]
        assert max(others) < 0.02  # bands share at most boundary rows

    def test_row_betas_expand_and_floor(self, controller, placed):
        grid = controller.sensor_grid(4)
        betas = grid.row_betas(np.array([-0.05, 0.0, 0.08, 0.01]))
        assert betas.shape == (placed.num_rows,)
        assert betas.min() == 0.0  # negative estimates floored
        lo, hi = grid.row_bands[2]
        assert (betas[lo:hi] == pytest.approx(0.08))

    def test_row_betas_shape_checked(self, controller):
        grid = controller.sensor_grid(4)
        with pytest.raises(TuningError, match="region betas"):
            grid.row_betas(np.zeros(3))

    def test_alarm_regions_localize_violations(self, controller, placed):
        grid = controller.sensor_grid(4)
        lo, hi = grid.row_bands[1]
        field = {name: (1.2 if lo <= placed.row_of(name) < hi else 1.0)
                 for name in grid.gate_names}
        mask = grid.alarm_regions(field, controller.dcrit_ps * 1.0001)
        assert mask[1]
        clean = grid.alarm_regions(
            {name: 1.0 for name in grid.gate_names},
            controller.dcrit_ps * 1.0001)
        assert not clean.any()

    def test_replica_grid_is_one_central_monitor(self, controller,
                                                 placed):
        grid = controller.replica_sensor_grid(4)
        assert grid.num_regions == 1
        lo, hi = grid.sense_rows
        assert 0 < lo and hi < placed.num_rows  # central band only
        # Its single reading ignores a slowdown outside its band.
        field = {name: (1.10 if placed.row_of(name) < lo else 1.0)
                 for name in grid.gate_names}
        assert grid.estimate_region_betas(field)[0] < 0.02


class TestCalibrateSpatial:
    def test_clean_die_needs_no_bias(self, controller):
        grid = controller.sensor_grid(4)
        field = {name: 1.0 for name in grid.gate_names}
        outcome = controller.calibrate_spatial(field)
        assert outcome.converged
        assert outcome.iterations == 0
        assert outcome.solution is None
        assert outcome.region_betas == (0.0,) * 4

    def test_recovers_a_localized_slow_band(self, controller, placed):
        grid = controller.sensor_grid(4)
        # Slow only the band hosting the design's critical path (the
        # global Dcrit lives in one block on this workload), so the
        # alarm is real but stays local.
        critical_gate = controller._paths[0].gates[0]
        hot = int(grid.gate_region[grid._index[critical_gate]])
        lo, hi = grid.row_bands[hot]
        field = {name: (1.06 if lo <= placed.row_of(name) < hi else 1.0)
                 for name in grid.gate_names}
        outcome = controller.calibrate_spatial(field)
        assert outcome.converged
        assert outcome.solution is not None
        assert outcome.region_betas[hot] >= 0.05
        # Some far band stayed cold: its estimate never grew past the
        # guard, so allocation is targeted, not uniform.
        cold = [outcome.region_betas[region] for region in range(4)
                if region != hot]
        assert min(cold) <= 0.02

    def test_negative_scales_rejected(self, controller):
        grid = controller.sensor_grid(4)
        field = {name: -1.0 for name in grid.gate_names}
        with pytest.raises(TuningError, match="negative"):
            controller.calibrate_spatial(field)

    def test_unrecoverable_die_raises(self, controller):
        grid = controller.sensor_grid(4)
        field = {name: 1.30 for name in grid.gate_names}
        with pytest.raises(TuningError, match="beyond FBB recovery"):
            controller.calibrate_spatial(field)


class TestTunePopulationSpatial:
    def test_spatial_mode_summary(self, controller, population):
        summary = tune_population(controller, population,
                                  beta_budget=0.02, mode="spatial",
                                  num_regions=4)
        assert summary.mode == "spatial"
        assert summary.num_regions == 4
        assert summary.num_dies == population.num_dies
        assert summary.yield_after >= summary.yield_before

    def test_unknown_mode_rejected(self, controller, population):
        with pytest.raises(TuningError, match="mode"):
            tune_population(controller, population, mode="psychic")

    def test_model_mode_unchanged_defaults(self, controller, population):
        summary = tune_population(controller, population,
                                  beta_budget=0.02)
        assert summary.mode == "model"
        assert summary.num_regions is None

    def test_workers_bit_identical(self, controller, population):
        serial = tune_population(controller, population,
                                 beta_budget=0.02, mode="spatial",
                                 num_regions=4)
        pooled = tune_population(controller, population,
                                 beta_budget=0.02, mode="spatial",
                                 num_regions=4, workers=4)
        assert serial == pooled

    def test_replica_sensor_arm_runs(self, placed, population):
        uniform_controller = TuningController(
            placed, CLIB, method="single_bb", sense_guard=0.01)
        summary = tune_population(uniform_controller, population,
                                  beta_budget=0.02, mode="spatial",
                                  num_regions=4, replica_sensor=True)
        assert summary.mode == "spatial"
        assert summary.num_regions == 1  # one replica monitor

    def test_spatial_needs_scale_matrix(self, controller, population):
        import dataclasses
        stripped = dataclasses.replace(population, scale_matrix=None)
        with pytest.raises(TuningError, match="scale matrix"):
            tune_population(controller, stripped, mode="spatial")


class TestRunSpatialHarness:
    def test_spatial_arm_dominates_uniform(self):
        soc = multiblock_soc("soc_harness", num_blocks=4,
                             block_gates=130, seed=3)
        flow = implement(soc, cache=ArtifactCache())
        row = run_spatial(flow, SpatialConfig(
            num_dies=24, seed=9, model=MODEL, num_regions=4,
            beta_budget=0.02))
        assert row.num_regions == 4
        assert row.correlation_length == 0.25
        assert row.spatial_yield >= row.uniform_yield
        if row.spatial_yield == row.uniform_yield:
            assert row.spatial_leakage_uw <= row.uniform_leakage_uw
