"""Serial-vs-parallel population tuning equivalence and the
empty-population regressions.

``tune_population(workers=1)`` is the reference implementation; the
sharded ``workers > 1`` path must reassemble records in die order and
produce a bit-identical :class:`PopulationTuningSummary` (frozen
dataclass equality, floats and all).  Also pins the two serial-era
crash bugs the parallel engine exposed: ``ZeroDivisionError`` on an
empty population and the NaN/`RuntimeWarning` from
``MonteCarloResult.timing_yield`` on empty betas.
"""

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import c1355_like
from repro.errors import TuningError
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import characterize_library, reduced_library
from repro.tuning import TuningController, calibrate_die, tune_population
from repro.variation import MonteCarloResult, sample_dies

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=10, check_bits=5), LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="module")
def controller(placed):
    return TuningController(placed, CLIB)


class TestEmptyPopulation:
    """Regression: the serial era crashed on zero dies."""

    def test_timing_yield_of_empty_population_is_one(self):
        empty = MonteCarloResult(samples=(), nominal_delay_ps=100.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # np.mean would warn here
            assert empty.timing_yield() == 1.0
            assert empty.timing_yield(0.05) == 1.0

    def test_tune_empty_population_returns_clean_summary(self, controller):
        empty = MonteCarloResult(samples=(), nominal_delay_ps=100.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            summary = tune_population(controller, empty)  # ZeroDivision!
        assert summary.num_dies == 0
        assert summary.records == ()
        assert summary.yield_before == 1.0
        assert summary.yield_after == 1.0
        assert summary.recovered == 0
        assert summary.lost == 0
        assert summary.mean_recovered_leakage_nw() == 0.0

    def test_tune_empty_population_parallel_request_is_fine(
            self, controller):
        empty = MonteCarloResult(samples=(), nominal_delay_ps=100.0)
        assert tune_population(controller, empty, workers=4) \
            == tune_population(controller, empty)


class TestSerialParallelEquivalence:
    def test_summaries_bit_identical(self, placed, controller):
        population = sample_dies(placed, 16, seed=2, store_scales=False)
        serial = tune_population(controller, population)
        for workers in (2, 4):
            parallel = tune_population(controller, population,
                                       workers=workers)
            assert parallel == serial  # records, yields, floats and all

    def test_records_stay_in_die_order(self, placed, controller):
        population = sample_dies(placed, 12, seed=5, store_scales=False)
        summary = tune_population(controller, population, workers=3)
        assert [record.index for record in summary.records] \
            == [die.index for die in population.samples]

    def test_more_workers_than_slow_dies(self, placed, controller):
        population = sample_dies(placed, 5, seed=2, store_scales=False)
        assert tune_population(controller, population, workers=16) \
            == tune_population(controller, population)

    def test_beta_budget_respected_in_parallel(self, placed, controller):
        population = sample_dies(placed, 12, seed=2, store_scales=False)
        serial = tune_population(controller, population, beta_budget=0.03)
        parallel = tune_population(controller, population,
                                   beta_budget=0.03, workers=2)
        assert parallel == serial
        assert parallel.yield_before == population.timing_yield(0.03)

    def test_workers_validated(self, placed, controller):
        population = sample_dies(placed, 3, seed=2, store_scales=False)
        with pytest.raises(TuningError, match="workers"):
            tune_population(controller, population, workers=0)

    def test_calibrate_die_is_history_independent(self, placed,
                                                  controller):
        """The per-die unit of work must not depend on calibration
        order — the property that makes sharding sound."""
        unbiased = controller.clib_leakage_unbiased()
        first = calibrate_die(controller, 0, 0.05, 0.0, unbiased)
        calibrate_die(controller, 1, 0.09, 0.0, unbiased)  # mutate state
        again = calibrate_die(controller, 0, 0.05, 0.0, unbiased)
        assert again == first

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=50),
           workers=st.integers(min_value=2, max_value=4),
           beta_budget=st.sampled_from([0.0, 0.02]))
    def test_property_serial_equals_parallel(self, placed, controller,
                                             seed, workers, beta_budget):
        population = sample_dies(placed, 8, seed=seed,
                                 store_scales=False)
        serial = tune_population(controller, population,
                                 beta_budget=beta_budget)
        parallel = tune_population(controller, population,
                                   beta_budget=beta_budget,
                                   workers=workers)
        assert parallel == serial
