"""Incremental-vs-full ECO re-solve equivalence harness.

``EcoSolver.resolve`` against its persistent cache (incremental mode)
and against a cold cache (the reference full re-solve) run the *same*
code path — every per-domain sub-solution is a pure function of the
domain's rows and quantised betas — so the two must agree bit for bit:
identical level assignments, identical leakage floats.  This suite
drives that contract over randomized drift trajectories (seeds,
circuits across three size classes, domain groupings including
``bands:k`` and ``correlation:k``, drift magnitudes), and pins the
zero-drift short-circuit: re-resolving an unchanged field reports no
dirty domains and is served purely from the ``eco-domain`` cache tier
(counters asserted, DESIGN.md "Temporal scenarios").
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import c1355_like
from repro.circuits.industrial import industrial_module, multiblock_soc
from repro.errors import TuningError
from repro.flow.cache import ArtifactCache
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import characterize_library, reduced_library
from repro.tuning import DEFAULT_QUANT_STEP, EcoSolver, quantise_betas
from repro.tuning.eco import DOMAIN_KIND
from repro.variation import DriftModel, NbtiModel, row_betas_epochs

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)

GROUPINGS = (None, "bands:4", "correlation:4")

#: drift magnitudes the property sweep composes with seeds/designs —
#: "mild" mostly wobbles below the quantisation step, "moderate"
#: re-quantises large correlated patches every epoch.
DRIFTS = {
    "mild": DriftModel(nbti=NbtiModel(prefactor_v=0.004),
                       activity_sigma_v=0.001),
    "moderate": DriftModel(nbti=NbtiModel(prefactor_v=0.012),
                           activity_sigma_v=0.003),
}

_PLACED = {}
_SOLVERS = {}


def _placed(design: str):
    if design not in _PLACED:
        if design == "c1355_small":
            netlist = c1355_like(data_width=10, check_bits=5)
        elif design == "soc_small":
            netlist = multiblock_soc("soc_small", num_blocks=2,
                                     block_gates=220)
        else:
            netlist = industrial_module("ind_small", 900, seed=5)
        _PLACED[design] = place_design(map_netlist(netlist, LIBRARY),
                                       LIBRARY)
    return _PLACED[design]


def _solver(design: str, grouping: str | None) -> EcoSolver:
    """Module-cached solvers: construction re-runs STA + path
    extraction, which would dominate the property suite's runtime.
    Statefulness across examples is fine — a sub-solution depends only
    on (rows, quantised betas), never on resolve history."""
    key = (design, grouping)
    if key not in _SOLVERS:
        _SOLVERS[key] = EcoSolver(_placed(design), CLIB,
                                  grouping=grouping)
    return _SOLVERS[key]


@pytest.fixture(scope="module")
def placed():
    return _placed("c1355_small")


class TestIncrementalEqualsFull:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=200),
           design=st.sampled_from(["c1355_small", "soc_small",
                                   "ind_small"]),
           grouping=st.sampled_from(GROUPINGS),
           drift=st.sampled_from(sorted(DRIFTS)))
    def test_property_incremental_equals_full(self, seed, design,
                                              grouping, drift):
        solver = _solver(design, grouping)
        placed = _placed(design)
        betas = row_betas_epochs(placed, placed.library.tech,
                                 DRIFTS[drift], seed, num_epochs=3)
        for epoch in range(3):
            incremental = solver.resolve(betas[epoch])
            full = solver.resolve(betas[epoch], cache=ArtifactCache())
            assert incremental.levels == full.levels  # bit-identical
            assert incremental.leakage_nw == full.leakage_nw
            assert incremental.num_domains == solver.num_domains

    def test_zero_drift_epoch_is_pure_cache_hits(self, placed):
        """The unchanged field must add zero eco-domain misses — every
        degraded domain is served from the cache tiers."""
        solver = EcoSolver(placed, CLIB)
        betas = row_betas_epochs(placed, placed.library.tech,
                                 DRIFTS["moderate"], seed=1,
                                 num_epochs=1)[0]
        first = solver.resolve(betas)
        stats = solver.cache.stats()["by_kind"][DOMAIN_KIND]
        misses, hits = stats["misses"], stats["hits"]
        degraded = sum(1 for domain in range(solver.num_domains)
                       if quantise_betas(betas)[
                           list(solver._domain_rows[domain])].any())
        assert misses == degraded  # first epoch: every domain solved

        repeat = solver.resolve(betas)
        stats = solver.cache.stats()["by_kind"][DOMAIN_KIND]
        assert repeat.dirty_domains == ()
        assert stats["misses"] == misses  # zero new solves
        assert stats["hits"] == hits + degraded  # all served warm
        assert repeat.levels == first.levels
        assert repeat.leakage_nw == first.leakage_nw

    def test_sub_step_wobble_never_invalidates(self, placed):
        solver = EcoSolver(placed, CLIB)
        betas = np.full(placed.num_rows, 0.021)
        first = solver.resolve(betas)
        wobbled = betas + 0.004  # still inside the 0.02 cell
        again = solver.resolve(wobbled)
        assert again.dirty_domains == ()
        assert again.levels == first.levels

    def test_single_row_drift_dirties_single_domain(self, placed):
        solver = EcoSolver(placed, CLIB)  # identity: domain == row
        betas = np.full(placed.num_rows, 0.021)
        solver.resolve(betas)
        moved = betas.copy()
        moved[3] += 2 * DEFAULT_QUANT_STEP
        result = solver.resolve(moved)
        assert result.dirty_domains == (3,)
        full = solver.resolve(moved, cache=ArtifactCache())
        assert result.levels == full.levels


class TestEcoMechanics:
    def test_quantise_floors_to_grid(self):
        np.testing.assert_array_equal(
            quantise_betas(np.array([0.0, 0.004, 0.01, 0.019, 0.035])),
            np.array([0.0, 0.0, 0.01, 0.01, 0.03]))

    def test_quantise_clamps_negative(self):
        np.testing.assert_array_equal(
            quantise_betas(np.array([-0.02, -0.001])),
            np.zeros(2))

    def test_quantise_rejects_bad_step(self):
        with pytest.raises(TuningError):
            quantise_betas(np.array([0.01]), step=0.0)

    def test_undegraded_field_stays_unbiased(self, placed):
        solver = EcoSolver(placed, CLIB)
        result = solver.resolve(np.zeros(placed.num_rows))
        assert result.levels == (0,) * placed.num_rows
        assert result.num_violating_paths == 0
        assert not result.fallback

    def test_first_resolve_marks_all_domains_dirty(self, placed):
        solver = EcoSolver(placed, CLIB, grouping="bands:4")
        assert solver.num_domains == 4
        result = solver.resolve(np.full(placed.num_rows, 0.015))
        assert result.dirty_domains == (0, 1, 2, 3)

    def test_repair_enforces_cluster_budget(self, placed):
        """Independently solved domains may exceed the rail budget; the
        merge-up repair must bring the splice back inside it."""
        solver = EcoSolver(placed, CLIB, clusters=1)
        rng = np.random.default_rng(0)
        betas = 0.02 + 0.02 * rng.random(placed.num_rows)
        result = solver.resolve(betas)
        assert result.solution.problem.num_clusters(
            np.asarray(result.levels)) <= 1
        full = solver.resolve(betas, cache=ArtifactCache())
        assert result.levels == full.levels

    def test_infeasible_domain_falls_back_to_global(self, placed,
                                                    monkeypatch):
        """The safety net: a domain sub-solve reporting infeasible must
        trigger the cached global re-solve, and the result must still
        meet the epoch's joint constraints."""
        solver = EcoSolver(placed, CLIB)
        monkeypatch.setattr(
            solver, "_solve_domain",
            lambda rows, local: {"infeasible": True})
        betas = np.full(placed.num_rows, 0.03)
        result = solver.resolve(betas)
        assert result.fallback
        assert not result.repaired
        assert result.solution.problem.check_timing(
            np.asarray(result.levels))

    def test_wrong_shape_rejected(self, placed):
        solver = EcoSolver(placed, CLIB)
        with pytest.raises(TuningError, match="shape"):
            solver.resolve(np.zeros(placed.num_rows + 1))

    def test_bad_cluster_budget_rejected(self, placed):
        with pytest.raises(TuningError):
            EcoSolver(placed, CLIB, clusters=0)

    def test_solution_records_eco_method_and_dirty_domains(self, placed):
        solver = EcoSolver(placed, CLIB)
        result = solver.resolve(np.full(placed.num_rows, 0.015))
        assert result.solution.method == "eco:heuristic"
        assert result.solution.extras["dirty_domains"] \
            == list(result.dirty_domains)
