"""Grouping-aware tuning: the closed loop (paper Sec. 3.1, Fig. 2)
allocating at bias-domain granularity.

Covers the controller's grouped allocate step (scalar and spatial
sensing modes), the sensor grid's region -> domain mapping, and the
serial-vs-parallel bit-identity of grouped population tuning."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.errors import TuningError
from repro.grouping import RowGrouping
from repro.placement import place_design
from repro.synth import map_netlist, size_for_load
from repro.tech import characterize_library, reduced_library
from repro.tuning import TuningController, tune_population
from repro.variation import ProcessModel, sample_dies

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)

MODEL = ProcessModel(sigma_inter_v=0.004, sigma_intra_v=0.03,
                     intra_independent_fraction=0.1,
                     correlation_length_fraction=0.25)


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=10, check_bits=5), LIBRARY)
    size_for_load(mapped, LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="module")
def population(placed):
    return sample_dies(placed, 20, model=MODEL, seed=5,
                       store_scales=False)


def _domain_constant(levels, grouping: RowGrouping) -> bool:
    levels = np.asarray(levels)
    return all(len(set(levels[list(rows)].tolist())) == 1
               for rows in grouping.rows_of_groups())


class TestControllerGrouping:
    def test_bad_spec_rejected_at_construction(self, placed):
        with pytest.raises(TuningError, match="grouping"):
            TuningController(placed, CLIB, grouping="bands:zero")

    def test_grouped_calibrate_converges_domain_constant(self, placed):
        controller = TuningController(placed, CLIB, grouping="bands:3")
        outcome = controller.calibrate(0.05)
        assert outcome.converged
        grouping = RowGrouping.contiguous_bands(placed.num_rows, 3)
        assert _domain_constant(outcome.solution.levels, grouping)
        assert outcome.solution.num_groups == 3

    def test_identity_spec_matches_ungrouped_bitwise(self, placed):
        plain = TuningController(placed, CLIB).calibrate(0.05)
        spec = TuningController(placed, CLIB,
                                grouping="identity").calibrate(0.05)
        assert spec.solution.levels == plain.solution.levels
        assert spec.leakage_nw == plain.leakage_nw
        assert spec.iterations == plain.iterations

    def test_grouped_leakage_at_least_ungrouped(self, placed):
        plain = TuningController(placed, CLIB).calibrate(0.05)
        banded = TuningController(placed, CLIB,
                                  grouping="bands:2").calibrate(0.05)
        assert banded.converged
        assert banded.leakage_nw >= plain.leakage_nw - 1e-9

    def test_correlation_grouping_rebuilt_per_field(self, placed):
        controller = TuningController(placed, CLIB,
                                      grouping="correlation:3")
        outcome = controller.calibrate(0.04)
        assert outcome.converged
        # field-driven strategies must not populate the static cache
        assert "correlation:3" not in controller._groupings

    def test_static_grouping_cached(self, placed):
        controller = TuningController(placed, CLIB, grouping="bands:4")
        controller.calibrate(0.04)
        assert "bands:4" in controller._groupings


class TestSpatialGrouping:
    def test_group_betas_max_over_domain(self, placed):
        controller = TuningController(placed, CLIB)
        grid = controller.sensor_grid(4)
        grouping = RowGrouping.contiguous_bands(placed.num_rows, 2)
        region = np.array([0.01, 0.05, 0.02, 0.04])[:grid.num_regions]
        per_group = grid.group_betas(region, grouping)
        rows = grid.row_betas(region)
        expected = [rows[list(members)].max()
                    for members in grouping.rows_of_groups()]
        assert per_group.tolist() == expected

    def test_group_betas_shape_checked(self, placed):
        controller = TuningController(placed, CLIB)
        grid = controller.sensor_grid(2)
        with pytest.raises(TuningError, match="grouping"):
            grid.group_betas(np.zeros(2), RowGrouping.identity(3))

    def test_grouped_calibrate_spatial_converges(self, placed):
        controller = TuningController(placed, CLIB, grouping="bands:2",
                                      sense_guard=0.01)
        grid = controller.sensor_grid(4)
        field = {name: 1.04 for name in grid.gate_names}
        outcome = controller.calibrate_spatial(field)
        assert outcome.converged
        grouping = RowGrouping.contiguous_bands(placed.num_rows, 2)
        assert _domain_constant(outcome.solution.levels, grouping)

    def test_identity_spatial_matches_ungrouped(self, placed):
        # max_clusters=2 keeps the allocation inside the generator's
        # two-rail budget for any legal placement of the fixture.
        field_controller = TuningController(placed, CLIB,
                                            sense_guard=0.01,
                                            max_clusters=2)
        grid = field_controller.sensor_grid(4)
        betas = 1.0 + 0.05 * np.linspace(0, 1, len(grid.gate_names))
        field = dict(zip(grid.gate_names, betas.tolist()))
        plain = field_controller.calibrate_spatial(field)
        spec = TuningController(placed, CLIB, grouping="identity",
                                sense_guard=0.01,
                                max_clusters=2).calibrate_spatial(field)
        assert plain.converged == spec.converged
        if plain.solution is not None:
            assert spec.solution.levels == plain.solution.levels


class TestGroupedPopulationTuning:
    def test_workers_bit_identical_with_grouping(self, placed,
                                                 population):
        controller = TuningController(placed, CLIB, grouping="bands:3")
        serial = tune_population(controller, population,
                                 beta_budget=0.01, workers=1)
        parallel = tune_population(controller, population,
                                   beta_budget=0.01, workers=2)
        assert serial == parallel

    def test_grouped_spatial_population_mode(self, placed):
        scaled = sample_dies(placed, 8, model=MODEL, seed=11)
        controller = TuningController(placed, CLIB, grouping="bands:2",
                                      sense_guard=0.01, max_iterations=4)
        summary = tune_population(controller, scaled, beta_budget=0.02,
                                  mode="spatial", num_regions=4)
        assert summary.num_dies == 8
        assert summary.mode == "spatial"
