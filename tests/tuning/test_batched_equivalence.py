"""Batched-vs-serial population calibration equivalence harness.

``tune_population(mode="batched")`` is an execution engine, not a new
experiment: for any population, budget, grouping and worker count its
:class:`PopulationTuningSummary` must equal the per-die reference path
bit for bit (frozen dataclass equality — statuses, iteration counts,
leakage floats and all).  This suite drives that contract over
randomized populations (seeds, circuits, beta budgets, groupings
including ``bands:k`` and ``correlation:k``), checks ``workers=N``
sharding of the batched engine against ``workers=1``, and pins the
short-circuit behaviour: an all-converged or empty out-of-budget set
runs zero matrix passes and zero allocations in both engines
(DESIGN.md, "Batched calibration").
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import c1355_like
from repro.circuits.industrial import multiblock_soc
from repro.errors import TuningError
from repro.placement import place_design
from repro.synth import map_netlist
from repro.tech import characterize_library, reduced_library
from repro.tuning import (TuningController, calibrate_dies_batched,
                          tune_population)
from repro.variation import MonteCarloResult, sample_dies

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)

GROUPINGS = (None, "bands:4", "correlation:4")

_PLACED = {}
_CONTROLLERS = {}


def _placed(design: str):
    if design not in _PLACED:
        netlist = (c1355_like(data_width=10, check_bits=5)
                   if design == "c1355_small"
                   else multiblock_soc("soc_small", num_blocks=2,
                                       block_gates=220))
        _PLACED[design] = place_design(map_netlist(netlist, LIBRARY),
                                       LIBRARY)
    return _PLACED[design]


def _controller(design: str, grouping: str | None) -> TuningController:
    """Module-cached controllers: construction re-runs STA + path
    extraction, which would dominate the property suite's runtime."""
    key = (design, grouping)
    if key not in _CONTROLLERS:
        _CONTROLLERS[key] = TuningController(_placed(design), CLIB,
                                             grouping=grouping)
    return _CONTROLLERS[key]


@pytest.fixture(scope="module")
def placed():
    return _placed("c1355_small")


@pytest.fixture(scope="module")
def controller(placed):
    return TuningController(placed, CLIB)


class TestBatchedEquivalence:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=200),
           design=st.sampled_from(["c1355_small", "soc_small"]),
           beta_budget=st.sampled_from([0.0, 0.02, 0.05]),
           grouping=st.sampled_from(GROUPINGS))
    def test_property_batched_equals_serial(self, seed, design,
                                            beta_budget, grouping):
        population = sample_dies(_placed(design), 12, seed=seed,
                                 store_scales=False)
        ctl = _controller(design, grouping)
        serial = tune_population(ctl, population, beta_budget=beta_budget)
        batched = tune_population(ctl, population,
                                  beta_budget=beta_budget,
                                  mode="batched")
        assert batched == serial  # bit-identical, floats and all

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=200),
           workers=st.integers(min_value=2, max_value=4),
           beta_budget=st.sampled_from([0.0, 0.02]))
    def test_property_batched_workers_bit_identical(self, placed,
                                                    controller, seed,
                                                    workers, beta_budget):
        population = sample_dies(placed, 10, seed=seed,
                                 store_scales=False)
        reference = tune_population(controller, population,
                                    beta_budget=beta_budget,
                                    mode="batched")
        sharded = tune_population(controller, population,
                                  beta_budget=beta_budget,
                                  mode="batched", workers=workers)
        assert sharded == reference

    def test_summary_records_model_mode(self, placed, controller):
        """Batched is an execution knob: the summary says "model" so it
        compares equal to (and cache-aliases) the per-die path."""
        population = sample_dies(placed, 6, seed=2, store_scales=False)
        summary = tune_population(controller, population, mode="batched")
        assert summary.mode == "model"

    def test_includes_yield_loss_and_not_converged(self, placed):
        """The equivalence must hold through the failure statuses too:
        a single-iteration controller leaves slow dies not-converged,
        and rail-overflow/infeasible dies yield-loss — pick a seed
        population wide enough to exercise them."""
        ctl_a = TuningController(placed, CLIB, max_iterations=1)
        ctl_b = TuningController(placed, CLIB, max_iterations=1)
        population = sample_dies(placed, 40, seed=3, store_scales=False)
        serial = tune_population(ctl_a, population)
        batched = tune_population(ctl_b, population, mode="batched")
        assert serial == batched
        statuses = {record.status for record in serial.records}
        assert "recovered" in statuses or "not-converged" in statuses

    def test_record_order_and_indices_preserved(self, placed, controller):
        population = sample_dies(placed, 9, seed=4, store_scales=False)
        summary = tune_population(controller, population, mode="batched",
                                  workers=3)
        assert [record.index for record in summary.records] \
            == [die.index for die in population.samples]

    def test_direct_engine_rejects_negative_budget(self, controller):
        with pytest.raises(TuningError):
            calibrate_dies_batched(controller, [(0, 0.05)], -0.1, 100.0)

    def test_unknown_mode_rejected(self, placed, controller):
        population = sample_dies(placed, 3, seed=0, store_scales=False)
        with pytest.raises(TuningError, match="mode"):
            tune_population(controller, population, mode="bogus")


class TestShortCircuit:
    """An all-converged or empty out-of-budget set must construct no
    problem, no allocation, no grid and run zero matrix passes."""

    def test_empty_population_batched(self, controller):
        empty = MonteCarloResult(samples=(), nominal_delay_ps=100.0)
        assert tune_population(controller, empty, mode="batched") \
            == tune_population(controller, empty)

    def test_empty_dies_list_is_a_no_op(self, placed):
        ctl = TuningController(placed, CLIB)
        assert calibrate_dies_batched(ctl, [], 0.0, 100.0) == []
        assert ctl._batched is None  # sense pass never compiled

    @pytest.mark.parametrize("mode", ["model", "batched"])
    def test_all_within_budget_builds_no_problem(self, placed, mode,
                                                 monkeypatch):
        """Regression: every die inside the budget must never reach the
        problem/allocation machinery in either engine."""
        import repro.tuning.controller as controller_module
        population = sample_dies(placed, 10, seed=2, store_scales=False)
        budget = float(population.betas.max()) + 0.01

        def _forbidden(*args, **kwargs):
            raise AssertionError("build_problem called for an "
                                 "all-converged population")

        monkeypatch.setattr(controller_module, "build_problem",
                            _forbidden)
        ctl = TuningController(placed, CLIB)
        summary = tune_population(ctl, population, beta_budget=budget,
                                  mode=mode)
        assert all(record.status == "ok-unbiased"
                   for record in summary.records)
        if mode == "batched":
            assert ctl._batched is None  # zero matrix passes

    def test_all_within_budget_spatial_builds_no_grid(self, placed):
        """Regression: the spatial path used to construct its sensor
        grid (path/incidence matrices) even when no die needed it."""
        population = sample_dies(placed, 8, seed=2)
        budget = float(population.betas.max()) + 0.01
        ctl = TuningController(placed, CLIB)
        summary = tune_population(ctl, population, beta_budget=budget,
                                  mode="spatial", num_regions=4)
        assert ctl._grids == {}
        assert summary.num_regions == min(4, placed.num_rows)
        assert all(record.status == "ok-unbiased"
                   for record in summary.records)

    def test_spatial_region_validation_still_eager(self, placed):
        """Laziness must not swallow the num_regions validation."""
        population = sample_dies(placed, 4, seed=2)
        budget = float(population.betas.max()) + 0.01
        ctl = TuningController(placed, CLIB)
        with pytest.raises(TuningError, match="region"):
            tune_population(ctl, population, beta_budget=budget,
                            mode="spatial", num_regions=0)

    def test_sensed_converged_dies_skip_allocation(self, placed,
                                                   monkeypatch):
        """Out-of-budget dies that already meet spec unbiased converge
        in the sense pass — no allocation in either engine."""
        import repro.tuning.controller as controller_module
        # A beta above 0 but below the alarm threshold: Tcrit carries a
        # 1.0001 margin, so a tiny slowdown sails through unbiased.
        dies = [(0, 5e-6), (1, 3e-6)]

        def _forbidden(*args, **kwargs):
            raise AssertionError("allocation ran for sensed-clean dies")

        monkeypatch.setattr(controller_module, "build_problem",
                            _forbidden)
        ctl = TuningController(placed, CLIB)
        unbiased = ctl.clib_leakage_unbiased()
        records = calibrate_dies_batched(ctl, dies, 0.0, unbiased)
        assert [r.status for r in records] == ["recovered", "recovered"]
        assert [r.iterations for r in records] == [0, 0]
