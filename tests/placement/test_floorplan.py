"""Tests for floorplan sizing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PlacementError
from repro.placement import make_floorplan
from repro.tech import Technology

TECH = Technology()


class TestSizing:
    def test_basic_floorplan(self):
        floorplan = make_floorplan(TECH, total_cell_sites=4000)
        assert floorplan.num_rows >= 1
        assert floorplan.sites_per_row >= 1
        assert floorplan.total_sites() * floorplan.utilization_target \
            >= 4000 * 0.99

    def test_square_aspect(self):
        floorplan = make_floorplan(TECH, total_cell_sites=40000,
                                   aspect_ratio=1.0)
        ratio = floorplan.core_height_um / floorplan.core_width_um
        assert 0.6 < ratio < 1.6

    def test_wide_aspect_fewer_rows(self):
        square = make_floorplan(TECH, 40000, aspect_ratio=1.0)
        wide = make_floorplan(TECH, 40000, aspect_ratio=0.5)
        assert wide.num_rows < square.num_rows

    def test_fixed_num_rows(self):
        floorplan = make_floorplan(TECH, 4000, num_rows=10)
        assert floorplan.num_rows == 10

    def test_rows_scale_with_sqrt_of_size(self):
        small = make_floorplan(TECH, 10000)
        large = make_floorplan(TECH, 40000)
        ratio = large.num_rows / small.num_rows
        assert 1.7 < ratio < 2.4

    def test_higher_utilization_smaller_core(self):
        loose = make_floorplan(TECH, 10000, utilization=0.6)
        tight = make_floorplan(TECH, 10000, utilization=0.9)
        assert tight.core_area_um2 < loose.core_area_um2

    @given(st.integers(min_value=10, max_value=200000))
    def test_capacity_always_sufficient(self, sites):
        floorplan = make_floorplan(TECH, sites)
        assert floorplan.total_sites() >= sites

    def test_row_geometry(self):
        floorplan = make_floorplan(TECH, 4000)
        row = floorplan.row(1)
        assert row.y_um == pytest.approx(TECH.row_height_um)
        assert row.site_x_um(3) == pytest.approx(3 * TECH.site_width_um)

    def test_row_index_bounds(self):
        floorplan = make_floorplan(TECH, 4000)
        with pytest.raises(PlacementError):
            floorplan.row(floorplan.num_rows)
        with pytest.raises(PlacementError):
            floorplan.row(-1)

    def test_site_index_bounds(self):
        floorplan = make_floorplan(TECH, 4000)
        row = floorplan.row(0)
        with pytest.raises(PlacementError):
            row.site_x_um(row.num_sites)


class TestValidation:
    def test_empty_design_rejected(self):
        with pytest.raises(PlacementError):
            make_floorplan(TECH, 0)

    def test_bad_utilization_rejected(self):
        with pytest.raises(PlacementError):
            make_floorplan(TECH, 100, utilization=0.0)
        with pytest.raises(PlacementError):
            make_floorplan(TECH, 100, utilization=1.5)

    def test_bad_aspect_rejected(self):
        with pytest.raises(PlacementError):
            make_floorplan(TECH, 100, aspect_ratio=-1)
