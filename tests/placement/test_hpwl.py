"""Tests for the vectorized HPWL kernel: total-wirelength metric,
batched-vs-scalar delta equivalence, conflict thinning and the batched
greedy refinement."""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.errors import PlacementError
from repro.netlist import Netlist
from repro.placement import (HpwlKernel, MoveBatch, place_design,
                             refine_design, total_hpwl)
from repro.placement.hpwl import _adjacent_swap_batch, _ragged_ranges
from repro.synth import map_netlist, size_for_load
from repro.tech import reduced_library

LIBRARY = reduced_library()


def _placed(refine_passes: int = 1):
    mapped = map_netlist(c1355_like(data_width=10, check_bits=5), LIBRARY)
    size_for_load(mapped, LIBRARY)
    return place_design(mapped, LIBRARY, refine_passes=refine_passes)


@pytest.fixture(scope="module")
def placed():
    return _placed()


def _random_batch(kernel: HpwlKernel, rng: np.random.Generator,
                  num_moves: int = 64) -> MoveBatch:
    """Mixed swap/relocate batch over legal slots (mirrors the
    annealer's proposal shapes without its feasibility thinning)."""
    num_gates = len(kernel.rows)
    gate_a = rng.integers(0, num_gates, num_moves)
    gate_b = rng.integers(0, num_gates, num_moves)
    is_swap = rng.random(num_moves) < 0.5
    target = rng.integers(0, kernel.num_rows, num_moves)
    ends = kernel.row_ends()
    return MoveBatch(
        gate0=gate_a,
        row0=np.where(is_swap, kernel.rows[gate_b], target),
        site0=np.where(is_swap, kernel.sites[gate_b], ends[target]),
        gate1=np.where(is_swap, gate_b, -1),
        row1=np.where(is_swap, kernel.rows[gate_a], 0),
        site1=np.where(is_swap, kernel.sites[gate_a], 0))


class TestTotalHpwl:
    def test_matches_scalar_metric(self, placed):
        vectorized = total_hpwl(placed)
        scalar = placed.half_perimeter_wirelength_um()
        assert vectorized == pytest.approx(scalar, rel=1e-12)

    def test_empty_design_rejected(self):
        netlist = Netlist("void")
        from repro.placement.floorplan import make_floorplan
        from repro.placement.placed_design import PlacedDesign
        design = PlacedDesign(
            netlist=netlist, library=LIBRARY,
            floorplan=make_floorplan(LIBRARY.tech, 10),
            placements={})
        with pytest.raises(PlacementError):
            total_hpwl(design)

    def test_kernel_total_matches_metric(self, placed):
        assert HpwlKernel(placed).total_hpwl_um() == total_hpwl(placed)


class TestRaggedRanges:
    def test_concatenated_aranges(self):
        starts = np.array([3, 0, 7])
        counts = np.array([2, 0, 3])
        expected = [3, 4, 7, 8, 9]
        assert _ragged_ranges(starts, counts).tolist() == expected

    def test_empty(self):
        empty = np.zeros(0, dtype=np.int64)
        assert len(_ragged_ranges(empty, empty)) == 0


class TestDeltaHpwl:
    def test_vectorized_equals_scalar_oracle(self, placed):
        """Bit-for-bit equality of the batched evaluation against the
        per-move python-loop oracle over random mixed batches."""
        kernel = HpwlKernel(placed)
        rng = np.random.default_rng(7)
        for _ in range(10):
            batch = _random_batch(kernel, rng)
            deltas = kernel.delta_hpwl(batch)
            oracle = np.array([kernel.delta_hpwl_scalar(batch, move)
                               for move in range(len(batch))])
            assert np.array_equal(deltas, oracle)

    def test_empty_batch(self, placed):
        kernel = HpwlKernel(placed)
        empty = np.zeros(0, dtype=np.int64)
        batch = MoveBatch(empty, empty, empty, empty, empty, empty)
        assert len(kernel.delta_hpwl(batch)) == 0

    def test_null_move_has_zero_delta(self, placed):
        """Moving a gate onto its own slot changes nothing."""
        kernel = HpwlKernel(placed)
        gate = np.array([0])
        batch = MoveBatch(
            gate0=gate, row0=kernel.rows[gate].copy(),
            site0=kernel.sites[gate].copy(),
            gate1=np.array([-1]), row1=np.array([0]),
            site1=np.array([0]))
        assert kernel.delta_hpwl(batch)[0] == 0.0

    def test_incremental_apply_matches_fresh_kernel(self, placed):
        """Applied moves keep per-net boxes bit-identical to a cold
        rebuild from the resulting design."""
        kernel = HpwlKernel(placed)
        rng = np.random.default_rng(11)
        for _ in range(5):
            batch = _random_batch(kernel, rng, num_moves=32)
            ends = kernel.row_ends()
            relocate = batch.gate1 < 0
            fits = ends[batch.row0] + kernel.widths[batch.gate0] \
                <= kernel.num_sites
            same_width = kernel.widths[batch.gate0] \
                == kernel.widths[np.maximum(batch.gate1, 0)]
            distinct = batch.gate0 != batch.gate1
            feasible = np.where(relocate, fits, same_width & distinct)
            keep = kernel.first_claim(batch, feasible)
            kernel.apply(batch, keep)
        fresh = HpwlKernel(kernel.to_placed_design())
        assert np.array_equal(kernel._span, fresh._span)
        assert kernel.total_hpwl_um() == fresh.total_hpwl_um()


class TestFirstClaim:
    def test_kept_moves_are_disjoint(self, placed):
        kernel = HpwlKernel(placed)
        rng = np.random.default_rng(3)
        batch = _random_batch(kernel, rng, num_moves=128)
        keep = kernel.first_claim(batch,
                                  np.ones(len(batch), dtype=bool))
        ids = np.nonzero(keep)[0]
        gates: set[int] = set()
        nets: set[int] = set()
        for move in ids:
            touched = {int(batch.gate0[move])}
            if batch.gate1[move] >= 0:
                touched.add(int(batch.gate1[move]))
            assert not (gates & touched)
            gates |= touched
            incident = set()
            for gate in touched:
                incident |= set(kernel.incident_nets(gate).tolist())
            assert not (nets & incident)
            nets |= incident

    def test_lowest_index_wins(self, placed):
        kernel = HpwlKernel(placed)
        gate = np.array([5, 5])
        batch = MoveBatch(
            gate0=gate, row0=kernel.rows[gate].copy(),
            site0=kernel.sites[gate].copy(),
            gate1=np.array([-1, -1]), row1=np.zeros(2, dtype=np.int64),
            site1=np.zeros(2, dtype=np.int64))
        keep = kernel.first_claim(batch, np.ones(2, dtype=bool))
        assert keep.tolist() == [True, False]


class TestRefineDesign:
    def test_never_hurts_and_validates(self):
        design = _placed(refine_passes=0)
        before = total_hpwl(design)
        swaps = refine_design(design, passes=3)
        design.validate()
        assert swaps >= 0
        assert total_hpwl(design) <= before + 1e-9

    def test_zero_passes_noop(self):
        design = _placed(refine_passes=0)
        snapshot = dict(design.placements)
        assert refine_design(design, passes=0) == 0
        assert design.placements == snapshot

    def test_swaps_match_local_wirelength_oracle(self):
        """Every committed swap improves the legacy per-pair scalar
        objective (the pre-kernel refinement criterion)."""
        from repro.placement.placer import _local_wirelength
        design = _placed(refine_passes=0)
        kernel = HpwlKernel(design)
        batch = _adjacent_swap_batch(kernel)
        deltas = kernel.delta_hpwl(batch)
        for move in np.nonzero(deltas < -1e-12)[0][:20]:
            left = kernel.gate_names[int(batch.gate0[move])]
            right = kernel.gate_names[int(batch.gate1[move])]
            before = _local_wirelength(design, (left, right))
            saved = (design.placements[left], design.placements[right])
            design.placements[left], design.placements[right] = \
                saved[1], saved[0]
            after = _local_wirelength(design, (left, right))
            design.placements[left], design.placements[right] = saved
            assert after < before
