"""Tests for the seeded annealing placer and the placer registry:
determinism contract (same seed bit-identical, iterations=0 == BFS),
legality, config validation and registry dispatch."""

import dataclasses

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.errors import PlacementError, RegistryError
from repro.placement import place_design, total_hpwl
from repro.placement.anneal import (AnnealConfig, WellField, anneal_place,
                                    critical_gate_weights)
from repro.placement.hpwl import HpwlKernel, MoveBatch
from repro.placement.registry import (ANNEAL_PRESETS, PlacerRegistry,
                                      place, place_registry, placer_names,
                                      validate_placer_spec)
from repro.synth import map_netlist, size_for_load
from repro.tech import reduced_library

LIBRARY = reduced_library()

QUICK = AnnealConfig(iterations=24, moves_per_step=48)


def _mapped():
    mapped = map_netlist(c1355_like(data_width=10, check_bits=5), LIBRARY)
    size_for_load(mapped, LIBRARY)
    return mapped


@pytest.fixture(scope="module")
def mapped():
    return _mapped()


class TestDeterminism:
    def test_same_seed_bit_identical(self, mapped):
        first = anneal_place(mapped, LIBRARY, config=QUICK)
        second = anneal_place(_mapped(), LIBRARY, config=QUICK)
        assert first.placements == second.placements

    def test_different_seeds_explore(self, mapped):
        base = anneal_place(mapped, LIBRARY, config=QUICK)
        other = anneal_place(
            mapped, LIBRARY,
            config=dataclasses.replace(QUICK, seed=99))
        assert base.placements != other.placements

    def test_zero_iterations_is_exactly_bfs(self, mapped):
        frozen = anneal_place(
            mapped, LIBRARY,
            config=dataclasses.replace(QUICK, iterations=0))
        bfs = place_design(_mapped(), LIBRARY)
        assert frozen.placements == bfs.placements


class TestAnnealQuality:
    def test_result_is_legal(self, mapped):
        design = anneal_place(mapped, LIBRARY, config=QUICK)
        design.validate()
        assert set(design.placements) == set(design.netlist.gates)

    def test_quick_preset_improves_seed_hpwl(self, mapped):
        """Deterministic for the fixed seed: the quick preset beats the
        BFS seed wirelength on this fixture."""
        seed_design = place_design(_mapped(), LIBRARY)
        annealed = place(mapped, LIBRARY, method="anneal:quick")
        assert total_hpwl(annealed) < total_hpwl(seed_design)

    def test_floorplan_preserved(self, mapped):
        seed_design = place_design(_mapped(), LIBRARY)
        annealed = anneal_place(mapped, LIBRARY, config=QUICK)
        assert annealed.num_rows == seed_design.num_rows


class TestAnnealConfig:
    def test_defaults_valid(self):
        AnnealConfig()

    @pytest.mark.parametrize("overrides", [
        {"iterations": -1},
        {"moves_per_step": 0},
        {"cool_to": 0.0},
        {"cool_to": 1.5},
        {"t0_scale": 0.0},
        {"lambda_scale": -0.1},
        {"kappa": -1.0},
        {"swap_frac": 0.7, "targeted_frac": 0.7},
        {"swap_frac": -0.1},
        {"critical_beta": -0.05},
    ])
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(PlacementError):
            AnnealConfig(**overrides)


class TestWellField:
    def test_total_counts_boundaries(self):
        weights = np.array([1.0, 1.0, 0.0, 0.0])
        rows = np.array([0, 2, 1, 3])
        field = WellField(4, weights, rows, kappa=0.0)
        # biased pattern 1,0,1,0 -> 3 flips
        assert field.total() == 3.0

    def test_delta_matches_rebuild(self):
        """Vectorized penalty delta == recount after applying the move."""
        rng = np.random.default_rng(5)
        num_rows, num_gates = 6, 40
        weights = (rng.random(num_gates) < 0.3).astype(float)
        rows = rng.integers(0, num_rows, num_gates)
        field = WellField(num_rows, weights, rows, kappa=0.25)
        for _ in range(20):
            gate = rng.integers(0, num_gates, 1)
            target = rng.integers(0, num_rows, 1)
            batch = MoveBatch(
                gate0=gate, row0=target,
                site0=np.zeros(1, dtype=np.int64),
                gate1=np.full(1, -1, dtype=np.int64),
                row1=np.zeros(1, dtype=np.int64),
                site1=np.zeros(1, dtype=np.int64))
            predicted = field.delta(batch, rows)[0]
            before = field.total()
            rows[gate[0]] = target[0]
            field.rebuild(rows)
            assert predicted == pytest.approx(field.total() - before,
                                              abs=1e-9)

    def test_critical_weights_shape(self, mapped):
        design = place_design(_mapped(), LIBRARY)
        weights = critical_gate_weights(design, 0.05)
        assert len(weights) == len(design.netlist.gates)
        assert set(np.unique(weights)) <= {0.0, 1.0}


class TestRegistry:
    def test_engines_registered(self):
        names = placer_names(include_aliases=False)
        assert "bfs" in names
        for preset in ANNEAL_PRESETS:
            assert f"anneal:{preset}" in names

    def test_alias_resolves(self):
        assert place_registry.get("anneal").name == "anneal:default"
        assert "anneal" in placer_names(include_aliases=True)

    def test_unknown_placer_rejected(self):
        with pytest.raises(RegistryError, match="unknown placer"):
            place_registry.get("mystery")
        with pytest.raises(RegistryError):
            validate_placer_spec("")

    def test_docstring_required(self):
        registry = PlacerRegistry()

        def undocumented(netlist, library, **kwargs):
            pass

        with pytest.raises(RegistryError, match="docstring"):
            registry.register("bare", undocumented)

    def test_duplicate_registration_rejected(self):
        registry = PlacerRegistry()

        @registry.register("one")
        def engine(netlist, library, **kwargs):
            """An engine."""

        with pytest.raises(RegistryError, match="already registered"):
            registry.register("one", engine)
        with pytest.raises(RegistryError):
            registry.alias("one", "one")
        with pytest.raises(RegistryError, match="not a registered"):
            registry.alias("two", "missing")

    def test_entries_have_summaries(self):
        for entry in place_registry.entries():
            assert entry.summary

    def test_bfs_rejects_options(self, mapped):
        with pytest.raises(PlacementError, match="no options"):
            place(mapped, LIBRARY, method="bfs", seed=3)

    def test_anneal_entry_accepts_config_overrides(self, mapped):
        via_registry = place(mapped, LIBRARY, method="anneal:quick",
                             iterations=24, moves_per_step=48)
        direct = anneal_place(_mapped(), LIBRARY, config=dataclasses
                              .replace(ANNEAL_PRESETS["quick"],
                                       iterations=24, moves_per_step=48))
        assert via_registry.placements == direct.placements

    def test_bad_anneal_option_rejected(self, mapped):
        with pytest.raises(PlacementError, match="bad anneal option"):
            place(mapped, LIBRARY, method="anneal:quick", bogus=1)


class TestPlaceDesignDispatch:
    def test_default_is_bfs(self, mapped):
        assert place_design(_mapped(), LIBRARY).placements \
            == place_design(_mapped(), LIBRARY,
                            placer="bfs").placements

    def test_anneal_dispatch(self, mapped):
        annealed = place_design(_mapped(), LIBRARY, placer="anneal:quick",
                                iterations=24, moves_per_step=48)
        direct = anneal_place(_mapped(), LIBRARY, config=dataclasses
                              .replace(ANNEAL_PRESETS["quick"],
                                       iterations=24, moves_per_step=48))
        assert annealed.placements == direct.placements

    def test_unknown_placer_raises(self, mapped):
        with pytest.raises(RegistryError):
            place_design(_mapped(), LIBRARY, placer="mystery")

    def test_incremental_state_consistency(self, mapped):
        """After a full anneal the kernel invariants hold: recomputed
        HPWL equals the metric on the exported design."""
        design = anneal_place(mapped, LIBRARY, config=QUICK)
        kernel = HpwlKernel(design)
        assert kernel.total_hpwl_um() == total_hpwl(design)
