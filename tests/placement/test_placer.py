"""Tests for the row placer and PlacedDesign container."""

import pytest

from repro.circuits import c1355_like, c3540_like
from repro.errors import PlacementError
from repro.netlist import Netlist
from repro.placement import (Placement, connectivity_order, place_design)
from repro.synth import map_netlist, size_for_load
from repro.tech import reduced_library

LIBRARY = reduced_library()


def mapped_benchmark(generator=c1355_like, **kwargs):
    netlist = generator(**kwargs)
    mapped = map_netlist(netlist, LIBRARY)
    size_for_load(mapped, LIBRARY)
    return mapped


@pytest.fixture(scope="module")
def placed():
    return place_design(mapped_benchmark(), LIBRARY)


class TestPlacer:
    def test_placement_is_legal(self, placed):
        placed.validate()

    def test_every_gate_placed(self, placed):
        assert set(placed.placements) == set(placed.netlist.gates)

    def test_utilization_near_target(self, placed):
        utils = [placed.row_utilization(r) for r in range(placed.num_rows)]
        average = sum(utils) / len(utils)
        assert average == pytest.approx(
            placed.floorplan.utilization_target, abs=0.08)
        assert max(utils) <= 1.0

    def test_deterministic(self):
        first = place_design(mapped_benchmark(), LIBRARY)
        second = place_design(mapped_benchmark(), LIBRARY)
        assert first.placements == second.placements

    def test_fixed_rows_respected(self):
        design = place_design(mapped_benchmark(), LIBRARY, num_rows=10)
        assert design.num_rows == 10

    def test_refinement_never_hurts(self):
        base = place_design(mapped_benchmark(), LIBRARY, refine_passes=0)
        refined = place_design(mapped_benchmark(), LIBRARY, refine_passes=2)
        assert (refined.half_perimeter_wirelength_um()
                <= base.half_perimeter_wirelength_um() + 1e-6)

    def test_locality_beats_random_order(self):
        """BFS-ordered placement should have much lower HPWL than random."""
        import random
        mapped = mapped_benchmark(c3540_like, width=10)
        design = place_design(mapped, LIBRARY, refine_passes=0)

        shuffled = place_design(mapped, LIBRARY, refine_passes=0)
        names = list(shuffled.placements)
        rng = random.Random(0)
        rng.shuffle(names)
        slots = sorted(
            ((p.row, p.site) for p in shuffled.placements.values()))
        widths = {name: shuffled.placements[name].width_sites
                  for name in names}
        # random permutation of same-width cells only (keeps legality)
        by_width: dict[int, list[str]] = {}
        for name in names:
            by_width.setdefault(widths[name], []).append(name)
        for group in by_width.values():
            original = [shuffled.placements[name] for name in group]
            rng.shuffle(original)
            for name, placement in zip(group, original):
                shuffled.placements[name] = placement
        shuffled.validate()
        del slots
        assert (design.half_perimeter_wirelength_um()
                < 0.7 * shuffled.half_perimeter_wirelength_um())

    def test_unmapped_netlist_rejected(self):
        netlist = Netlist("raw")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("g1", "INV", ("a",), "y")
        with pytest.raises(PlacementError):
            place_design(netlist, LIBRARY)

    def test_empty_netlist_rejected(self):
        netlist = Netlist("void")
        with pytest.raises(PlacementError):
            place_design(netlist, LIBRARY)

    def test_overfull_floorplan_rejected(self):
        """A floorplan too small for the design raises, never silently drops."""
        from repro.placement.floorplan import Floorplan, Row
        from repro.placement.placer import _fold_into_rows, connectivity_order
        mapped = mapped_benchmark()
        tech = LIBRARY.tech
        rows = tuple(Row(i, i * tech.row_height_um, 40, tech.site_width_um)
                     for i in range(3))
        tiny = Floorplan(tech=tech, rows=rows, utilization_target=1.0)
        total = sum(LIBRARY.cell(g.cell_name).width_sites
                    for g in mapped.gates.values())
        with pytest.raises(PlacementError):
            _fold_into_rows(connectivity_order(mapped), mapped, LIBRARY,
                            tiny, total)


class TestConnectivityOrder:
    def test_covers_all_gates(self, placed):
        order = connectivity_order(placed.netlist)
        assert sorted(order) == sorted(placed.netlist.gates)

    def test_neighbours_are_connected(self, placed):
        """Most adjacent pairs in the order share a net."""
        netlist = placed.netlist
        order = connectivity_order(netlist)
        adjacent_connected = 0
        for left, right in zip(order, order[1:]):
            nets_left = set(netlist.gates[left].inputs)
            nets_left.add(netlist.gates[left].output)
            nets_right = set(netlist.gates[right].inputs)
            nets_right.add(netlist.gates[right].output)
            if nets_left & nets_right:
                adjacent_connected += 1
        assert adjacent_connected > 0.25 * (len(order) - 1)


class TestPlacedDesignQueries:
    def test_rows_to_gates_partition(self, placed):
        rows = placed.rows_to_gates()
        flattened = [name for row in rows for name in row]
        assert sorted(flattened) == sorted(placed.netlist.gates)

    def test_gates_in_row_ordered(self, placed):
        members = placed.gates_in_row(0)
        sites = [placed.placements[m].site for m in members]
        assert sites == sorted(sites)

    def test_gate_position(self, placed):
        name = next(iter(placed.placements))
        x_um, y_um = placed.gate_position_um(name)
        assert x_um >= 0
        assert y_um >= 0

    def test_unplaced_gate_query_fails(self, placed):
        with pytest.raises(PlacementError):
            placed.placement("does_not_exist")


class TestValidationFailures:
    def _tiny_design(self):
        netlist = Netlist("tiny")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("g1", "INV", ("a",), "n1", "INV_X1")
        netlist.add_gate("g2", "INV", ("n1",), "y", "INV_X1")
        return place_design(netlist, LIBRARY, num_rows=2)

    def test_overlap_detected(self):
        design = self._tiny_design()
        other = [n for n in design.placements if n != "g1"][0]
        design.placements["g1"] = design.placements[other]
        with pytest.raises(PlacementError):
            design.validate()

    def test_row_overflow_detected(self):
        design = self._tiny_design()
        width = design.placements["g1"].width_sites
        design.placements["g1"] = Placement(
            row=0, site=design.floorplan.sites_per_row - 1,
            width_sites=width)
        with pytest.raises(PlacementError):
            design.validate()

    def test_missing_gate_detected(self):
        design = self._tiny_design()
        del design.placements["g1"]
        with pytest.raises(PlacementError):
            design.validate()

    def test_wrong_width_detected(self):
        design = self._tiny_design()
        placement = design.placements["g1"]
        design.placements["g1"] = Placement(
            placement.row, placement.site, placement.width_sites + 5)
        with pytest.raises(PlacementError):
            design.validate()
