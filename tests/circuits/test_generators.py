"""Tests for the benchmark circuit generators."""

import pytest

from repro.circuits import (BENCHMARK_NAMES, PAPER_GATE_COUNTS, CircuitKit,
                            adder_128bits, build_benchmark, c1355_like,
                            c3540_like, c5315_like, c6288_like, c7552_like,
                            industrial_module)
from repro.errors import NetlistError
from repro.netlist import Netlist, netlist_stats
from repro.synth import map_netlist
from repro.tech import reduced_library

LIBRARY = reduced_library()


class TestKit:
    def make_kit(self):
        netlist = Netlist("kit")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_input("c")
        return netlist, CircuitKit(netlist, "k")

    def test_full_adder_structure(self):
        netlist, kit = self.make_kit()
        total, carry = kit.full_adder("a", "b", "c")
        netlist.add_output("s")
        netlist.add_output("co")
        kit.buf(total, output="s")
        kit.buf(carry, output="co")
        netlist.validate()
        histogram = netlist.function_histogram()
        assert histogram["XOR2"] == 2
        assert histogram["AND2"] == 2
        assert histogram["OR2"] == 1

    def test_ripple_adder_width(self):
        netlist, kit = self.make_kit()
        sums, carry = kit.ripple_adder(["a", "b"], ["c", "a"])
        assert len(sums) == 2
        netlist.add_output("y")
        kit.buf(carry, output="y")

    def test_mismatched_adder_widths(self):
        _netlist, kit = self.make_kit()
        with pytest.raises(NetlistError):
            kit.ripple_adder(["a"], ["b", "c"])

    def test_empty_tree_rejected(self):
        _netlist, kit = self.make_kit()
        with pytest.raises(NetlistError):
            kit.and_tree([])

    def test_tree_single_input_with_output(self):
        netlist, kit = self.make_kit()
        netlist.add_output("y")
        kit.parity_tree(["a"], output="y")
        netlist.validate()

    def test_mux4_validation(self):
        _netlist, kit = self.make_kit()
        with pytest.raises(NetlistError):
            kit.mux4(["a", "b"], ["c"])

    def test_register_bank(self):
        netlist, kit = self.make_kit()
        outs = kit.register(["a", "b", "c"])
        assert len(outs) == 3
        assert len(netlist.sequential_gates()) == 3


class TestGenerators:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_validates(self, name):
        netlist = build_benchmark(name)
        netlist.validate()
        assert netlist.num_gates > 100

    def test_unknown_benchmark(self):
        with pytest.raises(NetlistError):
            build_benchmark("c17")

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_mapped_size_tracks_paper(self, name):
        """Mapped gate counts should land within 2x of Table 1's scale."""
        mapped = map_netlist(build_benchmark(name), LIBRARY)
        paper = PAPER_GATE_COUNTS[name]
        assert 0.5 * paper <= mapped.num_gates <= 2.0 * paper

    def test_c6288_is_multiplier_shaped(self):
        netlist = c6288_like(width=8)
        stats = netlist_stats(netlist)
        assert stats.num_primary_inputs == 16
        assert stats.num_primary_outputs == 16
        assert stats.logic_depth > 20  # deep carry-save array

    def test_c1355_is_xor_dominated(self):
        histogram = c1355_like().function_histogram()
        xor_count = histogram.get("XOR2", 0)
        assert xor_count > 0.3 * sum(histogram.values())

    def test_adder_128_has_flop_to_flop_paths(self):
        netlist = adder_128bits()
        assert len(netlist.sequential_gates()) == 2 * 128 + 1 + 129

    def test_adder_unregistered_variant(self):
        netlist = adder_128bits(width=16, registered=False)
        assert not netlist.sequential_gates()

    def test_combinational_benchmarks_have_no_flops(self):
        for generator in (c1355_like, c3540_like, c5315_like, c7552_like,
                          c6288_like):
            netlist = generator()
            assert not netlist.sequential_gates(), generator.__name__


class TestIndustrial:
    def test_deterministic_for_seed(self):
        first = industrial_module("ind", 1000, seed=7)
        second = industrial_module("ind", 1000, seed=7)
        assert first.num_gates == second.num_gates
        assert first.function_histogram() == second.function_histogram()

    def test_different_seeds_differ(self):
        first = industrial_module("ind", 1000, seed=1)
        second = industrial_module("ind", 1000, seed=2)
        assert (first.function_histogram() != second.function_histogram()
                or first.num_gates != second.num_gates)

    def test_size_scales_with_target(self):
        small = map_netlist(industrial_module("s", 1000, seed=3), LIBRARY)
        large = map_netlist(industrial_module("l", 4000, seed=3), LIBRARY)
        assert 2.5 * small.num_gates < large.num_gates

    def test_too_small_target_rejected(self):
        with pytest.raises(NetlistError):
            industrial_module("tiny", 50)

    def test_contains_sequential_and_combinational(self):
        netlist = industrial_module("mix", 2000, seed=5)
        assert netlist.sequential_gates()
        assert netlist.combinational_gates()
