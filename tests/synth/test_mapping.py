"""Tests for technology mapping."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Netlist
from repro.synth import is_fully_mapped, map_netlist
from repro.tech import CellLibrary, Technology, reduced_library

LIBRARY = reduced_library()


def xor_netlist() -> Netlist:
    netlist = Netlist("x")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("y")
    netlist.add_gate("g1", "XOR2", ("a", "b"), "y")
    return netlist


class TestDirectMapping:
    def test_direct_functions_bound(self):
        netlist = Netlist("d")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_gate("g1", "NAND2", ("a", "b"), "y")
        mapped = map_netlist(netlist, LIBRARY)
        assert mapped.gate("g1").cell_name == "NAND2_X1"
        assert is_fully_mapped(mapped)

    def test_io_preserved(self):
        mapped = map_netlist(xor_netlist(), LIBRARY)
        assert mapped.primary_inputs == ["a", "b"]
        assert mapped.primary_outputs == ["y"]

    def test_dff_bound(self):
        netlist = Netlist("f")
        netlist.add_input("d")
        netlist.add_output("q")
        netlist.add_gate("f1", "DFF", ("d",), "q")
        mapped = map_netlist(netlist, LIBRARY)
        assert mapped.gate("f1").cell_name == "DFF_X1"


class TestDecomposition:
    def test_xor_becomes_4_nands(self):
        mapped = map_netlist(xor_netlist(), LIBRARY)
        assert mapped.num_gates == 4
        assert all(g.function == "NAND2" for g in mapped.gates.values())
        mapped.validate()

    def test_xnor_becomes_5_gates(self):
        netlist = Netlist("xn")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_gate("g1", "XNOR2", ("a", "b"), "y")
        mapped = map_netlist(netlist, LIBRARY)
        assert mapped.num_gates == 5
        histogram = mapped.function_histogram()
        assert histogram == {"INV": 1, "NAND2": 4}

    def test_buf_becomes_2_inverters(self):
        netlist = Netlist("b")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("g1", "BUF", ("a",), "y")
        mapped = map_netlist(netlist, LIBRARY)
        assert mapped.num_gates == 2
        assert all(g.function == "INV" for g in mapped.gates.values())

    def test_output_net_names_preserved(self):
        mapped = map_netlist(xor_netlist(), LIBRARY)
        assert "y" in mapped.nets
        assert mapped.net("y").driver is not None

    def test_mapped_netlist_validates(self):
        from repro.circuits import c3540_like
        mapped = map_netlist(c3540_like(width=6), LIBRARY)
        mapped.validate()
        assert is_fully_mapped(mapped)


class TestErrors:
    def test_missing_function_in_library(self):
        tech = Technology()
        tiny = CellLibrary(tech, [LIBRARY.cell("INV_X1")])
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_output("y")
        netlist.add_gate("g1", "NAND2", ("a", "b"), "y")
        with pytest.raises(NetlistError):
            map_netlist(netlist, tiny)
