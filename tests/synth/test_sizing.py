"""Tests for fanout-driven drive selection."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Netlist
from repro.synth import (drive_histogram, map_netlist, net_load_ff,
                         size_for_load)
from repro.tech import reduced_library

LIBRARY = reduced_library()


def high_fanout_netlist(fanout: int) -> Netlist:
    netlist = Netlist("fan")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("drv", "NAND2", ("a", "b"), "n0")
    for index in range(fanout):
        out = f"y{index}"
        netlist.add_output(out)
        netlist.add_gate(f"g{index}", "INV", ("n0",), out)
    return netlist


class TestLoadEstimate:
    def test_load_counts_pins_and_wire(self):
        mapped = map_netlist(high_fanout_netlist(4), LIBRARY)
        load = net_load_ff(mapped, LIBRARY, "n0")
        inv_cap = LIBRARY.cell("INV_X1").input_cap_ff
        assert load == pytest.approx(4 * inv_cap + 4 * 0.25)

    def test_unmapped_gate_rejected(self):
        netlist = high_fanout_netlist(2)
        with pytest.raises(NetlistError):
            net_load_ff(netlist, LIBRARY, "n0")


class TestSizing:
    def test_low_fanout_untouched(self):
        mapped = map_netlist(high_fanout_netlist(2), LIBRARY)
        changed = size_for_load(mapped, LIBRARY)
        assert changed == 0
        assert mapped.gate("drv").cell_name == "NAND2_X1"

    def test_high_fanout_upsized(self):
        mapped = map_netlist(high_fanout_netlist(40), LIBRARY)
        changed = size_for_load(mapped, LIBRARY)
        assert changed >= 1
        assert LIBRARY.cell(mapped.gate("drv").cell_name).drive > 1

    def test_never_downsizes(self):
        mapped = map_netlist(high_fanout_netlist(40), LIBRARY)
        size_for_load(mapped, LIBRARY)
        drives_after_first = {name: g.cell_name
                              for name, g in mapped.gates.items()}
        size_for_load(mapped, LIBRARY)
        for name, gate in mapped.gates.items():
            before = LIBRARY.cell(drives_after_first[name]).drive
            assert LIBRARY.cell(gate.cell_name).drive >= before

    def test_bad_budget_rejected(self):
        mapped = map_netlist(high_fanout_netlist(2), LIBRARY)
        with pytest.raises(NetlistError):
            size_for_load(mapped, LIBRARY, budget_ps=0)

    def test_histogram(self):
        mapped = map_netlist(high_fanout_netlist(40), LIBRARY)
        size_for_load(mapped, LIBRARY)
        histogram = drive_histogram(mapped, LIBRARY)
        assert sum(histogram.values()) == mapped.num_gates
        assert set(histogram) <= {1, 2, 4}
