"""Tests for unit conversions and constants."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestConversions:
    def test_time_units(self):
        assert units.ps_to_ns(1500.0) == pytest.approx(1.5)
        assert units.NS == 1000 * units.PS

    def test_power_units(self):
        assert units.nw_to_uw(2500.0) == pytest.approx(2.5)
        assert units.uw_to_nw(2.5) == pytest.approx(2500.0)

    def test_voltage_units(self):
        assert units.mv_to_v(50.0) == pytest.approx(0.05)
        assert units.v_to_mv(0.05) == pytest.approx(50.0)

    def test_percent_round_trip(self):
        assert units.percent(0.05) == pytest.approx(5.0)
        assert units.fraction(5.0) == pytest.approx(0.05)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_power_round_trip(self, value):
        assert units.uw_to_nw(units.nw_to_uw(value)) == pytest.approx(value)


class TestThermalVoltage:
    def test_room_temperature(self):
        assert units.thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_scales_with_temperature(self):
        assert units.thermal_voltage(400.0) > units.thermal_voltage(300.0)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro import errors
        subclasses = [
            errors.TechnologyError, errors.NetlistError, errors.ParseError,
            errors.PlacementError, errors.TimingError, errors.SolverError,
            errors.InfeasibleError, errors.TimeoutError_,
            errors.AllocationError, errors.LayoutError, errors.TuningError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_parse_error_location_formatting(self):
        from repro.errors import ParseError
        error = ParseError("bad token", "x.lef", 12)
        assert "x.lef" in str(error)
        assert "12" in str(error)
        assert error.line == 12
