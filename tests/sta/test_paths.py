"""Tests for longest-path-through-each-cell extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import c3540_like
from repro.errors import TimingError
from repro.netlist import Netlist
from repro.placement import place_design
from repro.sta import (TimingAnalyzer, TimingPath, extract_paths,
                       violating_paths)
from repro.synth import map_netlist
from repro.tech import reduced_library

LIBRARY = reduced_library()


@pytest.fixture(scope="module")
def analyzer():
    mapped = map_netlist(c3540_like(width=6), LIBRARY)
    placed = place_design(mapped, LIBRARY)
    return TimingAnalyzer.for_placed(placed)


class TestExtraction:
    def test_first_path_is_critical(self, analyzer):
        paths = extract_paths(analyzer)
        assert paths[0].delay_ps == pytest.approx(
            analyzer.critical_delay_ps())

    def test_paths_sorted_descending(self, analyzer):
        paths = extract_paths(analyzer)
        delays = [p.delay_ps for p in paths]
        assert delays == sorted(delays, reverse=True)

    def test_paths_unique(self, analyzer):
        paths = extract_paths(analyzer)
        keys = {p.gates for p in paths}
        assert len(keys) == len(paths)

    def test_every_gate_covered(self, analyzer):
        """Every cell appears on at least one extracted path."""
        paths = extract_paths(analyzer)
        covered = set()
        for path in paths:
            covered.update(path.gates)
        assert covered == set(analyzer.netlist.gates)

    def test_paths_follow_connectivity(self, analyzer):
        netlist = analyzer.netlist
        for path in extract_paths(analyzer)[:20]:
            for left, right in zip(path.gates, path.gates[1:]):
                sink_names = {g.name for g in netlist.fanout_gates(
                    netlist.gates[left].output)}
                assert right in sink_names

    def test_path_delay_consistent(self, analyzer):
        report = analyzer.analyze()
        for path in extract_paths(analyzer)[:10]:
            total = sum(report.gate_delay_ps[g] for g in path.gates)
            assert path.delay_ps == pytest.approx(
                total + path.setup_ps, rel=1e-9)


class TestViolatingFilter:
    def test_zero_beta_no_violations(self, analyzer):
        paths = extract_paths(analyzer)
        dcrit = paths[0].delay_ps
        assert violating_paths(paths, dcrit, 0.0) == []

    def test_count_grows_with_beta(self, analyzer):
        paths = extract_paths(analyzer)
        dcrit = paths[0].delay_ps
        m5 = len(violating_paths(paths, dcrit, 0.05))
        m10 = len(violating_paths(paths, dcrit, 0.10))
        assert 0 < m5 <= m10

    def test_critical_path_always_violates(self, analyzer):
        paths = extract_paths(analyzer)
        dcrit = paths[0].delay_ps
        violating = violating_paths(paths, dcrit, 0.05)
        assert violating[0].delay_ps == pytest.approx(dcrit)

    def test_negative_beta_rejected(self, analyzer):
        paths = extract_paths(analyzer)
        with pytest.raises(TimingError):
            violating_paths(paths, paths[0].delay_ps, -0.1)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.0, max_value=0.3))
    def test_all_violating_paths_exceed_dcrit(self, beta):
        mapped = map_netlist(c3540_like(width=4), LIBRARY)
        analyzer = TimingAnalyzer(mapped, LIBRARY)
        paths = extract_paths(analyzer)
        dcrit = paths[0].delay_ps
        for path in violating_paths(paths, dcrit, beta):
            assert path.delay_ps * (1 + beta) > dcrit


class TestTimingPath:
    def test_empty_path_rejected(self):
        with pytest.raises(TimingError):
            TimingPath((), (), 0.0, "po")

    def test_length_mismatch_rejected(self):
        with pytest.raises(TimingError):
            TimingPath(("g1",), (1.0, 2.0), 0.0, "po")

    def test_delay_includes_setup(self):
        path = TimingPath(("g1", "g2"), (10.0, 20.0), 30.0, "dff")
        assert path.delay_ps == pytest.approx(60.0)
        assert path.num_gates == 2


class TestRandomDags:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 60), st.integers(0, 10 ** 6))
    def test_extraction_sound_on_random_dags(self, num_gates, seed):
        """Longest-through-cell >= any path STA reports for that cell."""
        import random
        rng = random.Random(seed)
        netlist = Netlist("rand")
        netlist.add_input("a")
        netlist.add_input("b")
        nets = ["a", "b"]
        for index in range(num_gates):
            out = f"n{index}"
            netlist.add_gate(f"g{index}", "NAND2",
                             (rng.choice(nets), rng.choice(nets)), out,
                             "NAND2_X1")
            nets.append(out)
        netlist.add_output("y")
        netlist.add_gate("gy", "INV", (nets[-1],), "y", "INV_X1")
        analyzer = TimingAnalyzer(netlist, LIBRARY)
        paths = extract_paths(analyzer)
        assert paths[0].delay_ps == pytest.approx(
            analyzer.critical_delay_ps())
        covered = set()
        for path in paths:
            covered.update(path.gates)
        # gates feeding dangling nets may not reach an endpoint, but the
        # output cone must be covered
        assert "gy" in covered
