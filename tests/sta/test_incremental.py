"""Oracle tests for incremental batched STA (`refine`).

``BatchedTimingAnalyzer.refine`` re-propagates only the fan-out cones
of gates whose effective delay changed; its contract is *exact float
equality* with a from-scratch ``analyze`` over the new scale matrix —
the dirty-cone invariant batched population calibration leans on
(DESIGN.md, "Batched calibration").  Every test here compares refine
against the full-propagation oracle for some bias-delta pattern:
single-row, adjacent-row, all-row and empty deltas, the fallback
threshold on both sides, and disconnected-component netlists
(``multiblock_soc``), where a clean component's arrivals must survive
verbatim.
"""

import numpy as np
import pytest

from repro.circuits import c1355_like
from repro.circuits.industrial import multiblock_soc
from repro.errors import TimingError
from repro.placement import place_design
from repro.sta import BatchedTimingAnalyzer
from repro.synth import map_netlist
from repro.tech import characterize_library, reduced_library

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)


@pytest.fixture(scope="module")
def placed():
    mapped = map_netlist(c1355_like(data_width=10, check_bits=5), LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.fixture(scope="module")
def batched(placed):
    return BatchedTimingAnalyzer.for_placed(placed)


@pytest.fixture(scope="module")
def soc_batched():
    netlist = multiblock_soc("soc_mini", num_blocks=3, block_gates=220)
    placed = place_design(map_netlist(netlist, LIBRARY), LIBRARY)
    return placed, BatchedTimingAnalyzer.for_placed(placed)


def _row_gate_mask(placed, batched, rows):
    """Boolean gate mask covering the given placement rows."""
    mask = np.zeros(batched.num_gates, dtype=bool)
    for row, members in enumerate(placed.rows_to_gates()):
        if row in rows:
            for name in members:
                mask[batched.gate_index(name)] = True
    return mask


def _random_scales(batched, num_dies, seed, lo=0.85, hi=1.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(lo, hi, size=(num_dies, batched.num_gates))


def _assert_reports_identical(got, want):
    assert np.array_equal(got.arrival_ps, want.arrival_ps)
    assert np.array_equal(got.gate_delay_ps, want.gate_delay_ps)
    assert np.array_equal(got.endpoint_delay_ps, want.endpoint_delay_ps)
    assert np.array_equal(got.critical_delay_ps, want.critical_delay_ps)


class TestRefineOracle:
    """refine() == analyze() to the last bit, per delta pattern."""

    @pytest.mark.parametrize("rows", [(0,), (3,), (2, 3), (0, 1, 2)])
    def test_row_deltas_match_full_propagation(self, placed, batched, rows):
        before = _random_scales(batched, 5, seed=7)
        prev = batched.analyze(scales=before, derate=1.04)
        after = before.copy()
        mask = _row_gate_mask(placed, batched, set(rows))
        after[:, mask] *= 0.92
        report = batched.refine(prev.arrival_ps, mask, scales=after,
                                derate=1.04)
        _assert_reports_identical(report, batched.analyze(scales=after,
                                                          derate=1.04))

    def test_all_rows_changed(self, placed, batched):
        before = _random_scales(batched, 4, seed=1)
        prev = batched.analyze(scales=before, derate=1.08)
        after = before * 0.9
        mask = np.ones(batched.num_gates, dtype=bool)
        report = batched.refine(prev.arrival_ps, mask, scales=after,
                                derate=1.08)
        _assert_reports_identical(report, batched.analyze(scales=after,
                                                          derate=1.08))

    def test_empty_delta_returns_previous_arrivals(self, batched):
        scales = _random_scales(batched, 3, seed=3)
        prev = batched.analyze(scales=scales, derate=1.02)
        mask = np.zeros(batched.num_gates, dtype=bool)
        report = batched.refine(prev.arrival_ps, mask, scales=scales,
                                derate=1.02)
        _assert_reports_identical(report, prev)

    def test_per_die_derate_vector(self, placed, batched):
        before = _random_scales(batched, 6, seed=11)
        derate = 1.0 + np.linspace(0.0, 0.1, 6)
        prev = batched.analyze(scales=before, derate=derate)
        after = before.copy()
        mask = _row_gate_mask(placed, batched, {1, 4})
        after[:, mask] = 0.88
        report = batched.refine(prev.arrival_ps, mask, scales=after,
                                derate=derate)
        _assert_reports_identical(
            report, batched.analyze(scales=after, derate=derate))

    def test_random_gate_subsets(self, batched):
        rng = np.random.default_rng(42)
        before = _random_scales(batched, 4, seed=5)
        prev = batched.analyze(scales=before)
        for fraction in (0.01, 0.1, 0.4):
            mask = rng.random(batched.num_gates) < fraction
            after = before.copy()
            after[:, mask] *= rng.uniform(0.85, 1.0)
            report = batched.refine(prev.arrival_ps, mask, scales=after)
            _assert_reports_identical(report, batched.analyze(scales=after))


class TestFallbackThreshold:
    """Both sides of the dirty-fraction boundary give the same report."""

    def test_forced_fallback_equals_incremental(self, placed, batched):
        before = _random_scales(batched, 3, seed=9)
        prev = batched.analyze(scales=before, derate=1.05)
        after = before.copy()
        mask = _row_gate_mask(placed, batched, {2})
        after[:, mask] *= 0.9
        incremental = batched.refine(prev.arrival_ps, mask, scales=after,
                                     derate=1.05, fallback_fraction=1.0)
        fallback = batched.refine(prev.arrival_ps, mask, scales=after,
                                  derate=1.05, fallback_fraction=0.0)
        _assert_reports_identical(incremental, fallback)
        _assert_reports_identical(
            incremental, batched.analyze(scales=after, derate=1.05))

    def test_exact_boundary_is_incremental(self, batched):
        """`fraction * num_gates == num_dirty` stays on the incremental
        path (the fallback triggers on strictly-greater), and both sides
        of the boundary agree with the oracle."""
        scales = _random_scales(batched, 2, seed=13)
        prev = batched.analyze(scales=scales)
        mask = np.zeros(batched.num_gates, dtype=bool)
        mask[: batched.num_gates // 2] = True
        dirty = int(batched.dirty_gate_mask(mask).sum())
        boundary = dirty / batched.num_gates
        after = scales * 0.95
        at = batched.refine(prev.arrival_ps, np.ones_like(mask),
                            scales=after, fallback_fraction=boundary)
        below = batched.refine(prev.arrival_ps, np.ones_like(mask),
                               scales=after,
                               fallback_fraction=boundary - 1e-9)
        oracle = batched.analyze(scales=after)
        _assert_reports_identical(at, oracle)
        _assert_reports_identical(below, oracle)

    def test_negative_fallback_rejected(self, batched):
        scales = _random_scales(batched, 1, seed=0)
        prev = batched.analyze(scales=scales)
        with pytest.raises(TimingError):
            batched.refine(prev.arrival_ps,
                           np.zeros(batched.num_gates, dtype=bool),
                           scales=scales, fallback_fraction=-0.1)


class TestDisconnectedComponents:
    """multiblock_soc: a delta in one block leaves the others' arrivals
    untouched — and bit-identical to full propagation."""

    def test_single_block_delta(self, soc_batched):
        placed, batched = soc_batched
        before = _random_scales(batched, 4, seed=21)
        prev = batched.analyze(scales=before, derate=1.03)
        # Dirty exactly the gates of one block (by name prefix).
        block = {name for name in batched.gate_names
                 if name.startswith("b0_")}
        assert block, "expected block-prefixed gate names"
        mask = np.array([name in block for name in batched.gate_names])
        after = before.copy()
        after[:, mask] *= 0.9
        report = batched.refine(prev.arrival_ps, mask, scales=after,
                                derate=1.03)
        _assert_reports_identical(
            report, batched.analyze(scales=after, derate=1.03))
        # The clean components' closure must not grow into other blocks:
        dirty = batched.dirty_gate_mask(mask)
        outside = ~np.array([name in block
                             for name in batched.gate_names])
        assert not dirty[outside].any()
        assert np.array_equal(report.arrival_ps[:, outside],
                              prev.arrival_ps[:, outside])

    def test_dirty_cone_is_fanout_closure(self, batched):
        """Every dirty gate is reachable from a changed gate; marked
        gates are always dirty; nothing upstream-only is."""
        mask = np.zeros(batched.num_gates, dtype=bool)
        mask[0] = True
        dirty = batched.dirty_gate_mask(mask)
        assert dirty[0]
        assert dirty.sum() >= 1
        # Growing the seed set can only grow the closure.
        mask2 = mask.copy()
        mask2[batched.num_gates // 2] = True
        dirty2 = batched.dirty_gate_mask(mask2)
        assert (dirty2 | dirty).sum() == dirty2.sum()


class TestRefineValidation:
    def test_wrong_prev_shape_rejected(self, batched):
        scales = _random_scales(batched, 3, seed=2)
        prev = batched.analyze(scales=scales)
        with pytest.raises(TimingError):
            batched.refine(prev.arrival_ps[:2],
                           np.zeros(batched.num_gates, dtype=bool),
                           scales=scales)

    def test_wrong_mask_shape_rejected(self, batched):
        scales = _random_scales(batched, 2, seed=2)
        prev = batched.analyze(scales=scales)
        with pytest.raises(TimingError):
            batched.refine(prev.arrival_ps, np.zeros(3, dtype=bool),
                           scales=scales)
