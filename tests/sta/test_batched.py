"""Batched-vs-scalar STA equivalence (the DESIGN.md validation contract).

The batched engine must reproduce the scalar ``TimingAnalyzer`` per die
within 1e-9 ps (in practice bit-for-bit: the arithmetic is ordered
identically) across random scale matrices, derates, and circuits.
"""

import numpy as np
import pytest

from repro.circuits import c1355_like, c3540_like, c6288_like
from repro.errors import TimingError
from repro.placement import place_design
from repro.sta import BatchedTimingAnalyzer, TimingAnalyzer
from repro.synth import map_netlist
from repro.tech import reduced_library

LIBRARY = reduced_library()
TOLERANCE_PS = 1e-9

CIRCUITS = {
    "sec": lambda: c1355_like(data_width=8, check_bits=4),
    "alu": lambda: c3540_like(width=6),
    "mult": lambda: c6288_like(width=5),
}


@pytest.fixture(scope="module", params=sorted(CIRCUITS))
def engines(request):
    mapped = map_netlist(CIRCUITS[request.param](), LIBRARY)
    placed = place_design(mapped, LIBRARY)
    scalar = TimingAnalyzer.for_placed(placed)
    return scalar, BatchedTimingAnalyzer(scalar)


class TestCompilation:
    def test_gate_order_covers_netlist(self, engines):
        scalar, batched = engines
        assert set(batched.gate_names) == set(scalar.netlist.gates)
        assert batched.num_gates == scalar.netlist.num_gates

    def test_endpoints_match_scalar(self, engines):
        scalar, batched = engines
        assert list(batched.endpoints) == scalar.endpoints


class TestEquivalence:
    def test_nominal_matches_scalar(self, engines):
        scalar, batched = engines
        critical = batched.critical_delays(num_dies=1)
        assert critical.shape == (1,)
        assert critical[0] == pytest.approx(scalar.critical_delay_ps(),
                                            abs=TOLERANCE_PS)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_scale_matrices_match_scalar(self, engines, seed):
        """Property: per-die critical delays equal the scalar engine's
        for any seeded random scale matrix."""
        scalar, batched = engines
        rng = np.random.default_rng(seed)
        scales = rng.uniform(0.6, 1.5, size=(8, batched.num_gates))
        criticals = batched.critical_delays(scales)
        for die, row in enumerate(scales):
            reference = scalar.critical_delay_ps(batched.mapping_of_row(row))
            assert abs(criticals[die] - reference) <= TOLERANCE_PS

    def test_endpoint_delays_match_scalar(self, engines):
        scalar, batched = engines
        rng = np.random.default_rng(3)
        scales = rng.uniform(0.8, 1.3, size=(3, batched.num_gates))
        report = batched.analyze(scales)
        for die, row in enumerate(scales):
            reference = scalar.analyze(batched.mapping_of_row(row))
            for column, endpoint in enumerate(batched.endpoints):
                assert abs(report.endpoint_delay_ps[die, column]
                           - reference.endpoint_delay_ps[endpoint]) \
                    <= TOLERANCE_PS

    def test_scalar_derate_matches(self, engines):
        scalar, batched = engines
        criticals = batched.critical_delays(derate=1.08, num_dies=2)
        reference = scalar.critical_delay_ps(derate=1.08)
        assert np.all(np.abs(criticals - reference) <= TOLERANCE_PS)

    def test_per_die_derate_matches(self, engines):
        scalar, batched = engines
        rng = np.random.default_rng(9)
        scales = rng.uniform(0.9, 1.2, size=(6, batched.num_gates))
        derates = rng.uniform(1.0, 1.15, size=6)
        criticals = batched.critical_delays(scales, derate=derates)
        for die in range(6):
            reference = scalar.critical_delay_ps(
                batched.mapping_of_row(scales[die]),
                derate=float(derates[die]))
            assert abs(criticals[die] - reference) <= TOLERANCE_PS

    def test_chunked_sweep_identical(self, engines):
        _scalar, batched = engines
        rng = np.random.default_rng(4)
        scales = rng.uniform(0.7, 1.4, size=(10, batched.num_gates))
        whole = batched.critical_delays(scales)
        chunked = batched.critical_delays(scales, chunk_dies=3)
        assert np.array_equal(whole, chunked)


class TestReport:
    def test_meets_and_slacks(self, engines):
        scalar, batched = engines
        report = batched.analyze(num_dies=1)
        required = scalar.critical_delay_ps()
        assert report.meets(required).all()
        assert report.slack_ps(required).min() >= -TOLERANCE_PS
        assert not batched.meets(required, derate=1.2, num_dies=1).any()

    def test_worst_endpoints(self, engines):
        scalar, batched = engines
        report = batched.analyze(num_dies=1)
        assert report.worst_endpoints() == \
            [scalar.analyze().worst_endpoint()]


class TestScaleHelpers:
    def test_mapping_round_trip(self, engines):
        _scalar, batched = engines
        rng = np.random.default_rng(0)
        row = rng.uniform(0.8, 1.2, size=batched.num_gates)
        rebuilt = batched.scales_row(batched.mapping_of_row(row))
        assert np.array_equal(row, rebuilt)

    def test_partial_mapping_defaults_to_one(self, engines):
        _scalar, batched = engines
        name = batched.gate_names[0]
        row = batched.scales_row({name: 1.3})
        assert row[batched.gate_index(name)] == 1.3
        assert np.sum(row != 1.0) == 1

    def test_scales_matrix_stacks_mappings(self, engines):
        _scalar, batched = engines
        matrix = batched.scales_matrix([None, {batched.gate_names[0]: 2.0}])
        assert matrix.shape == (2, batched.num_gates)
        assert matrix[0].min() == matrix[0].max() == 1.0


class TestValidation:
    def test_bad_scale_shape_rejected(self, engines):
        _scalar, batched = engines
        with pytest.raises(TimingError):
            batched.critical_delays(np.ones((2, batched.num_gates + 1)))

    def test_bad_derate_rejected(self, engines):
        _scalar, batched = engines
        with pytest.raises(TimingError):
            batched.critical_delays(derate=0.0, num_dies=1)
        with pytest.raises(TimingError):
            batched.critical_delays(derate=np.ones((2, 2)), num_dies=2)

    def test_mismatched_die_counts_rejected(self, engines):
        _scalar, batched = engines
        scales = np.ones((3, batched.num_gates))
        with pytest.raises(TimingError):
            batched.critical_delays(scales, derate=np.ones(4))
        with pytest.raises(TimingError):
            batched.critical_delays(scales, num_dies=5)

    def test_unknown_gate_rejected(self, engines):
        _scalar, batched = engines
        with pytest.raises(TimingError):
            batched.scales_row({"nope": 1.0})

    def test_bad_chunk_size_rejected(self, engines):
        _scalar, batched = engines
        with pytest.raises(TimingError):
            batched.critical_delays(np.ones(batched.num_gates)[None, :],
                                    chunk_dies=0)

    def test_empty_population_rejected(self, engines):
        _scalar, batched = engines
        with pytest.raises(TimingError):
            batched.critical_delays(np.ones((0, batched.num_gates)))
        with pytest.raises(TimingError):
            batched.critical_delays(derate=np.ones(0))
