"""Tests for the STA engine."""

import pytest

from repro.errors import TimingError
from repro.netlist import Netlist
from repro.sta import TimingAnalyzer
from repro.tech import reduced_library

LIBRARY = reduced_library()


def chain_netlist(length=5) -> Netlist:
    netlist = Netlist("chain")
    netlist.add_input("a")
    netlist.add_output("y")
    previous = "a"
    for index in range(length):
        out = "y" if index == length - 1 else f"n{index}"
        netlist.add_gate(f"g{index}", "INV", (previous,), out, "INV_X1")
        previous = out
    return netlist


def flop_pair_netlist() -> Netlist:
    """DFF -> INV chain -> DFF plus a PO."""
    netlist = Netlist("pair")
    netlist.add_input("d")
    netlist.add_output("y")
    netlist.add_gate("f1", "DFF", ("d",), "q1", "DFF_X1")
    netlist.add_gate("g1", "INV", ("q1",), "n1", "INV_X1")
    netlist.add_gate("g2", "INV", ("n1",), "n2", "INV_X1")
    netlist.add_gate("f2", "DFF", ("n2",), "y", "DFF_X1")
    return netlist


class TestArrivalPropagation:
    def test_chain_delay_accumulates(self):
        analyzer = TimingAnalyzer(chain_netlist(5), LIBRARY)
        report = analyzer.analyze()
        arrivals = [report.arrival_ps[f"g{i}"] for i in range(5)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert report.critical_delay_ps == pytest.approx(arrivals[-1])

    def test_chain_scales_with_length(self):
        short = TimingAnalyzer(chain_netlist(3), LIBRARY)
        long = TimingAnalyzer(chain_netlist(9), LIBRARY)
        assert (long.critical_delay_ps()
                > 2 * short.critical_delay_ps())

    def test_derate_scales_critical_delay(self):
        analyzer = TimingAnalyzer(chain_netlist(5), LIBRARY)
        base = analyzer.critical_delay_ps()
        slowed = analyzer.critical_delay_ps(derate=1.10)
        assert slowed == pytest.approx(1.10 * base, rel=1e-9)

    def test_per_gate_scaling(self):
        analyzer = TimingAnalyzer(chain_netlist(5), LIBRARY)
        base = analyzer.analyze()
        scaled = analyzer.analyze(scales={"g2": 0.5})
        expected = base.critical_delay_ps - 0.5 * base.gate_delay_ps["g2"]
        assert scaled.critical_delay_ps == pytest.approx(expected, rel=1e-9)

    def test_bad_derate_rejected(self):
        analyzer = TimingAnalyzer(chain_netlist(3), LIBRARY)
        with pytest.raises(TimingError):
            analyzer.analyze(derate=0.0)


class TestSequentialPaths:
    def test_flop_endpoints_found(self):
        analyzer = TimingAnalyzer(flop_pair_netlist(), LIBRARY)
        kinds = {(e.kind, e.name) for e in analyzer.endpoints}
        assert ("po", "y") in kinds
        assert ("dff", "f1") in kinds
        assert ("dff", "f2") in kinds

    def test_flop_to_flop_path_includes_setup(self):
        analyzer = TimingAnalyzer(flop_pair_netlist(), LIBRARY)
        report = analyzer.analyze()
        f2_endpoint = next(e for e in analyzer.endpoints
                           if e.kind == "dff" and e.name == "f2")
        setup = LIBRARY.cell("DFF_X1").setup_ps
        expected = (report.arrival_ps["g2"] + setup)
        assert report.endpoint_delay_ps[f2_endpoint] == pytest.approx(
            expected)

    def test_launch_clk_to_q_counts(self):
        analyzer = TimingAnalyzer(flop_pair_netlist(), LIBRARY)
        report = analyzer.analyze()
        assert report.arrival_ps["f1"] > 0  # clk->Q launch delay

    def test_meets_required(self):
        analyzer = TimingAnalyzer(flop_pair_netlist(), LIBRARY)
        dcrit = analyzer.critical_delay_ps()
        assert analyzer.meets(dcrit)
        assert not analyzer.meets(dcrit - 1.0)


class TestWorstEndpoint:
    def test_worst_endpoint_has_critical_delay(self):
        analyzer = TimingAnalyzer(flop_pair_netlist(), LIBRARY)
        report = analyzer.analyze()
        worst = report.worst_endpoint()
        assert report.endpoint_delay_ps[worst] == pytest.approx(
            report.critical_delay_ps)

    def test_slack_signs(self):
        analyzer = TimingAnalyzer(flop_pair_netlist(), LIBRARY)
        report = analyzer.analyze()
        slacks = report.slack_ps(report.critical_delay_ps)
        assert min(slacks.values()) == pytest.approx(0.0, abs=1e-9)


class TestValidation:
    def test_empty_netlist_rejected(self):
        with pytest.raises(TimingError):
            TimingAnalyzer(Netlist("empty"), LIBRARY)

    def test_unmapped_gate_rejected(self):
        netlist = Netlist("raw")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("g1", "INV", ("a",), "y")
        analyzer = TimingAnalyzer(netlist, LIBRARY)
        with pytest.raises(TimingError):
            analyzer.analyze()
