"""Integration: full pipeline round trips and end-to-end properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import build_problem, implement, solve_heuristic, solve_single_bb
from repro.circuits import CircuitKit, industrial_module
from repro.lefdef import read_def, rebuild_placed_design, write_def
from repro.netlist import Netlist, read_bench, read_verilog, write_bench, \
    write_verilog


class TestFlowOnGeneratedDesigns:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_random_industrial_module_flows_end_to_end(self, seed):
        """Any generated module must survive the whole pipeline."""
        netlist = industrial_module("fuzz", 400, seed=seed)
        flow = implement(netlist)
        problem = build_problem(flow.placed, flow.clib, 0.05,
                                analyzer=flow.analyzer,
                                paths=list(flow.paths),
                                dcrit_ps=flow.dcrit_ps)
        baseline = solve_single_bb(problem)
        solution = solve_heuristic(problem, 3)
        assert solution.is_timing_feasible
        assert solution.leakage_nw <= baseline.leakage_nw + 1e-9

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_interchange_round_trip_preserves_problem(self, tmp_path_factory,
                                                      seed):
        """bench -> netlist -> verilog -> netlist keeps the structure."""
        tmp_path = tmp_path_factory.mktemp("rt")
        import random
        rng = random.Random(seed)
        netlist = Netlist("rt")
        kit = CircuitKit(netlist, "k")
        inputs = [netlist.add_input(f"i{k}") for k in range(6)]
        nets = list(inputs)
        for _ in range(30):
            function = rng.choice(["NAND2", "NOR2", "AND2", "XOR2", "INV"])
            arity = 1 if function == "INV" else 2
            nets.append(kit.gate(function,
                                 *[rng.choice(nets) for _ in range(arity)]))
        consumed = {net for gate in netlist.gates.values()
                    for net in gate.inputs}
        for index, net in enumerate(n for n in nets if n not in consumed):
            out = netlist.add_output(f"o{index}")
            kit.buf(net, output=out)
        netlist.validate()

        bench_path = tmp_path / "a.bench"
        write_bench(netlist, bench_path)
        from_bench = read_bench(bench_path)
        verilog_path = tmp_path / "a.v"
        write_verilog(from_bench, verilog_path)
        from_verilog = read_verilog(verilog_path)
        assert (from_verilog.function_histogram()
                == netlist.function_histogram())
        assert from_verilog.num_gates == netlist.num_gates


class TestDefRoundTripThroughFlow:
    def test_placed_design_def_round_trip_preserves_problem(self, tmp_path):
        flow = implement("c1355")
        def_path = tmp_path / "d.def"
        write_def(flow.placed, def_path)
        rebuilt = rebuild_placed_design(read_def(def_path),
                                        flow.netlist.copy(),
                                        flow.clib.library)
        original_rows = flow.placed.rows_to_gates()
        rebuilt_rows = rebuilt.rows_to_gates()
        assert original_rows == rebuilt_rows

    def test_problem_identical_after_def_round_trip(self, tmp_path):
        """The FBB problem built from a DEF re-import matches the original."""
        flow = implement("c1355")
        problem = build_problem(flow.placed, flow.clib, 0.05,
                                analyzer=flow.analyzer,
                                paths=list(flow.paths),
                                dcrit_ps=flow.dcrit_ps)
        def_path = tmp_path / "d.def"
        write_def(flow.placed, def_path)
        rebuilt = rebuild_placed_design(read_def(def_path),
                                        flow.netlist.copy(),
                                        flow.clib.library)
        problem2 = build_problem(rebuilt, flow.clib, 0.05)
        assert problem2.num_rows == problem.num_rows
        assert problem2.num_constraints == problem.num_constraints
        assert problem.leakage_nw == pytest.approx(problem2.leakage_nw)
        baseline = solve_single_bb(problem)
        baseline2 = solve_single_bb(problem2)
        assert baseline.leakage_nw == pytest.approx(baseline2.leakage_nw)
