"""Integration: allocation solutions must hold up under full STA.

The allocation algorithms work on the linearised per-path constraint
model (Sec. 4.2).  These tests re-run the real timing engine with the
chosen per-gate scale factors and the beta derate, verifying the design
actually recovers its nominal critical delay — i.e. the linearisation
and the path-pruning heuristic do not let violations slip through.
"""

import pytest

from repro.circuits import c1355_like, c3540_like
from repro.core import build_problem, solve_heuristic, solve_ilp
from repro.placement import place_design
from repro.sta import TimingAnalyzer
from repro.synth import map_netlist, size_for_load
from repro.tech import characterize_library, reduced_library

LIBRARY = reduced_library()
CLIB = characterize_library(LIBRARY)

#: tolerated timing excess from path pruning, fraction of Dcrit
PRUNING_TOLERANCE = 0.002


def full_sta_critical(placed, solution, beta):
    analyzer = TimingAnalyzer.for_placed(placed)
    scales = {}
    for row, members in enumerate(placed.rows_to_gates()):
        scale = CLIB.delay_scales[solution.levels[row]]
        for name in members:
            scales[name] = scale
    return analyzer.critical_delay_ps(scales, derate=1.0 + beta)


@pytest.fixture(scope="module", params=["sec", "alu"])
def placed(request):
    if request.param == "sec":
        netlist = c1355_like(data_width=12, check_bits=5)
    else:
        netlist = c3540_like(width=8)
    mapped = map_netlist(netlist, LIBRARY)
    size_for_load(mapped, LIBRARY)
    return place_design(mapped, LIBRARY)


@pytest.mark.parametrize("beta", [0.05, 0.10])
class TestCrossCheck:
    def test_heuristic_meets_timing_under_sta(self, placed, beta):
        problem = build_problem(placed, CLIB, beta)
        solution = solve_heuristic(problem, 3)
        critical = full_sta_critical(placed, solution, beta)
        assert critical <= problem.dcrit_ps * (1 + PRUNING_TOLERANCE)

    def test_ilp_meets_timing_under_sta(self, placed, beta):
        problem = build_problem(placed, CLIB, beta)
        solution = solve_ilp(problem, 3)
        critical = full_sta_critical(placed, solution, beta)
        assert critical <= problem.dcrit_ps * (1 + PRUNING_TOLERANCE)

    def test_unbiased_die_violates_under_sta(self, placed, beta):
        """Sanity: the slowed-down die really is broken without FBB."""
        problem = build_problem(placed, CLIB, beta)
        analyzer = TimingAnalyzer.for_placed(placed)
        degraded = analyzer.critical_delay_ps(derate=1.0 + beta)
        assert degraded > problem.dcrit_ps * (1 + beta / 2)
