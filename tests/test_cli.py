"""Tests for the repro-fbb command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.designs == []
        assert args.ilp_time_limit == 120.0

    def test_allocate_args(self):
        args = build_parser().parse_args(
            ["allocate", "c1355", "--beta", "0.08", "--clusters", "2"])
        assert args.design == "c1355"
        assert args.beta == 0.08
        assert args.clusters == 2

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["allocate", "c17"])

    def test_montecarlo_defaults(self):
        args = build_parser().parse_args(["montecarlo", "c1355"])
        assert args.dies == 1000
        assert args.engine == "batched"
        assert not args.tune

    def test_montecarlo_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["montecarlo", "c1355", "--engine", "quantum"])

    def test_montecarlo_seed_threaded(self):
        args = build_parser().parse_args(
            ["montecarlo", "c1355", "--seed", "42"])
        assert args.seed == 42

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "specs.json", "-o", "out.jsonl"])
        assert args.specs == "specs.json"
        assert args.output == "out.jsonl"
        assert args.cache_dir is None
        assert args.workers == 1

    def test_sweep_workers_arg(self):
        args = build_parser().parse_args(
            ["sweep", "specs.json", "--workers", "4"])
        assert args.workers == 4

    def test_montecarlo_workers_arg(self):
        args = build_parser().parse_args(["montecarlo", "c1355"])
        assert args.workers == 1
        args = build_parser().parse_args(
            ["montecarlo", "c1355", "--workers", "3"])
        assert args.workers == 3

    def test_allocate_method_arg(self):
        args = build_parser().parse_args(
            ["allocate", "c1355", "--method", "heuristic:level-sweep"])
        assert args.method == "heuristic:level-sweep"

    def test_spatial_defaults(self):
        args = build_parser().parse_args(["spatial", "soc_quad"])
        assert args.dies == 200
        assert args.regions == 4
        assert args.correlation_length is None
        assert args.workers == 1

    def test_spatial_args_threaded(self):
        args = build_parser().parse_args(
            ["spatial", "soc_quad", "--dies", "40", "--regions", "6",
             "--correlation-length", "0.25", "--sigma-intra", "0.03",
             "--beta-budget", "0.02", "--workers", "2"])
        assert args.dies == 40
        assert args.regions == 6
        assert args.correlation_length == 0.25
        assert args.sigma_intra == 0.03
        assert args.beta_budget == 0.02
        assert args.workers == 2

    def test_spatial_accepts_extra_benchmarks_only_if_known(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spatial", "nonexistent"])


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "vbs" in out
        assert "0.95" in out

    def test_allocate_heuristic(self, capsys):
        assert main(["allocate", "c1355", "--beta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "savings vs single BB" in out

    def test_layout(self, capsys):
        assert main(["layout", "c1355", "--beta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_table1_single_design(self, capsys):
        assert main(["table1", "c1355", "--ilp-time-limit", "30"]) == 0
        out = capsys.readouterr().out
        assert "c1355" in out
        assert "No.Constr" in out

    def test_montecarlo(self, capsys):
        assert main(["montecarlo", "c1355", "--dies", "50",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "c1355" in out
        assert "STA engine: batched" in out

    def test_montecarlo_reproducible_from_seed(self, capsys):
        """Same seed -> identical report; different seed -> different."""
        assert main(["montecarlo", "c1355", "--dies", "40",
                     "--seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["montecarlo", "c1355", "--dies", "40",
                     "--seed", "5"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert main(["montecarlo", "c1355", "--dies", "40",
                     "--seed", "6"]) == 0
        third = capsys.readouterr().out
        assert third != first

    def test_allocate_with_registry_method(self, capsys):
        assert main(["allocate", "c1355", "--beta", "0.05",
                     "--method", "heuristic:level-sweep"]) == 0
        out = capsys.readouterr().out
        assert "level-sweep" in out
        assert "savings vs single BB" in out

    def test_spatial_study(self, capsys):
        assert main(["spatial", "soc_quad", "--dies", "10",
                     "--seed", "9", "--beta-budget", "0.02",
                     "--correlation-length", "0.5",
                     "--sigma-intra", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "soc_quad" in out
        assert "uniform" in out and "spatial" in out
        assert "0.50" in out  # correlation length column


class TestSweep:
    def test_sweep_runs_specs_and_emits_jsonl(self, tmp_path, capsys):
        specs = [
            {"kind": "allocate", "design": "c1355", "beta": 0.05,
             "method": "heuristic:row-descent"},
            {"kind": "allocate", "design": "c1355", "beta": 0.05,
             "method": "heuristic:row-descent"},
        ]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps(specs))
        out_file = tmp_path / "results.jsonl"
        assert main(["sweep", str(spec_file), "-o", str(out_file)]) == 0
        lines = out_file.read_text().strip().splitlines()
        assert len(lines) == 2
        results = [json.loads(line) for line in lines]
        assert results[0]["payload"] == results[1]["payload"]
        assert results[1]["cache_hit"]  # duplicate spec reused the cache
        err = capsys.readouterr().err
        assert "artifact cache" in err

    def test_sweep_single_object_accepted(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(
            {"kind": "allocate", "design": "c1355", "beta": 0.05}))
        assert main(["sweep", str(spec_file)]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out.strip().splitlines()[0])["payload"]
        assert payload["design"] == "c1355"

    def test_sweep_bad_spec_becomes_error_record(self, tmp_path, capsys):
        """One malformed spec must not abort the batch: it becomes a
        JSONL error record, the good specs still run, and the exit
        status is nonzero only at the end."""
        specs = [
            {"kind": "nope"},
            {"kind": "allocate", "design": "c1355", "beta": 0.05},
            {"kind": "allocate", "design": "c1355",
             "tech": {"not_a_knob": 1}},  # fails at execution time
        ]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps(specs))
        assert main(["sweep", str(spec_file)]) == 1
        captured = capsys.readouterr()
        lines = [json.loads(line)
                 for line in captured.out.strip().splitlines()]
        assert len(lines) == 3  # every spec got an output slot, in order
        assert lines[0]["error"] == "SpecError"
        assert lines[0]["spec"] == {"kind": "nope"}
        assert lines[1]["payload"]["design"] == "c1355"
        assert lines[2]["error"] == "SpecError"
        assert "2 of 3 sweep spec(s) failed" in captured.err

    def test_sweep_wrong_typed_value_becomes_error_record(
            self, tmp_path, capsys):
        """Validation failures outside the ReproError hierarchy (a
        string where an int belongs raises TypeError) must also become
        error records, not abort the batch."""
        specs = [
            {"kind": "allocate", "design": "c1355", "clusters": "3"},
            {"kind": "allocate", "design": "c1355", "beta": 0.05},
        ]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps(specs))
        assert main(["sweep", str(spec_file)]) == 1
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.strip().splitlines()]
        assert lines[0]["error"] == "TypeError"
        assert lines[1]["payload"]["design"] == "c1355"

    def test_sweep_all_good_specs_exit_zero(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(
            [{"kind": "allocate", "design": "c1355", "beta": 0.05}]))
        assert main(["sweep", str(spec_file)]) == 0
        assert "failed" not in capsys.readouterr().err

    def test_sweep_parallel_workers_match_serial(self, tmp_path, capsys):
        specs = [{"kind": "allocate", "design": "c1355", "beta": beta}
                 for beta in (0.04, 0.06)]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps(specs))
        serial_out = tmp_path / "serial.jsonl"
        parallel_out = tmp_path / "parallel.jsonl"
        assert main(["sweep", str(spec_file), "-o",
                     str(serial_out)]) == 0
        assert main(["sweep", str(spec_file), "-o", str(parallel_out),
                     "--workers", "2", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        from repro.flow import stable_payload

        def read(path):
            return [stable_payload(json.loads(line)["payload"])
                    for line in path.read_text().splitlines()]

        assert read(serial_out) == read(parallel_out)

    def test_montecarlo_tune_workers_matches_serial(self, capsys):
        """--workers shards the tuning loop; the tuned-yield report must
        be identical to serial.  Each run gets a fresh default cache —
        workers is excluded from the content address, so a shared cache
        would serve the serial payload and never exercise the pool.
        """
        from repro.flow import ArtifactCache, set_default_cache
        argv = ["montecarlo", "c1355", "--dies", "30", "--seed", "4",
                "--tune"]
        outputs = []
        for extra in ([], ["--workers", "2"]):
            previous = set_default_cache(ArtifactCache())
            try:
                assert main(argv + extra) == 0
            finally:
                set_default_cache(previous)
            outputs.append(capsys.readouterr().out)
        serial, parallel = outputs

        def strip_runtime(text):
            return [" ".join(line.split()[:-1])
                    for line in text.splitlines()]

        assert strip_runtime(parallel) == strip_runtime(serial)
        assert "tuned" in serial
