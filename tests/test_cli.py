"""Tests for the repro-fbb command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.designs == []
        assert args.ilp_time_limit == 120.0

    def test_allocate_args(self):
        args = build_parser().parse_args(
            ["allocate", "c1355", "--beta", "0.08", "--clusters", "2"])
        assert args.design == "c1355"
        assert args.beta == 0.08
        assert args.clusters == 2

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["allocate", "c17"])

    def test_montecarlo_defaults(self):
        args = build_parser().parse_args(["montecarlo", "c1355"])
        assert args.dies == 1000
        assert args.engine == "batched"
        assert not args.tune

    def test_montecarlo_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["montecarlo", "c1355", "--engine", "quantum"])


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "vbs" in out
        assert "0.95" in out

    def test_allocate_heuristic(self, capsys):
        assert main(["allocate", "c1355", "--beta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "savings vs single BB" in out

    def test_layout(self, capsys):
        assert main(["layout", "c1355", "--beta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_table1_single_design(self, capsys):
        assert main(["table1", "c1355", "--ilp-time-limit", "30"]) == 0
        out = capsys.readouterr().out
        assert "c1355" in out
        assert "No.Constr" in out

    def test_montecarlo(self, capsys):
        assert main(["montecarlo", "c1355", "--dies", "50",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "c1355" in out
        assert "STA engine: batched" in out
