"""Legacy setup shim.

The offline evaluation environment lacks the `wheel` package, so PEP 517
editable installs fail with `invalid command 'bdist_wheel'`.  Keeping a
setup.py (and omitting [build-system] from pyproject.toml) lets
`pip install -e .` fall back to `setup.py develop`, which works offline.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
